"""Ablation studies beyond the paper's own NoM/NoP (DESIGN.md §5).

* :func:`ablate_guard` — the §III co-tenant QoS guard: what happens to
  the background tenants when a switch-in no longer checks them.
* :func:`ablate_sample_period` — the Eq. 8 sample-period bound: decision
  quality when the controller samples faster than one cold start can be
  absorbed.
* :func:`ablate_discriminant` — the M/M/N discriminant (Eq. 5) against a
  naive "keep utilization under ρ_max" rule.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.core.config import AmoebaConfig
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_amoeba
from repro.experiments.scenarios import Scenario, default_scenario

__all__ = [
    "ablate_discriminant",
    "ablate_guard",
    "ablate_keep_alive",
    "ablate_sample_period",
]


def _fg_stats(result, scenario: Scenario) -> Tuple[float, float, int]:
    fg = result.foreground(scenario)
    return (
        fg.metrics.violation_fraction,
        fg.usage.mean_cores,
        len(fg.switch_events),
    )


def ablate_guard(name: str = "matmul", day: float = 3600.0, seed: int = 0) -> FigureResult:
    """Co-tenant guard on vs. off: background-tenant QoS under switch-ins.

    The default §VII background mix is deliberately healthy, so the guard
    rarely binds there.  To expose it, this ablation adds a *vulnerable*
    tenant: a CPU-bound service already running close to its serverless
    ceiling.  With the guard off, the foreground switches in on top of it
    regardless of what that does to its latency.
    """
    import dataclasses

    from repro.workloads.functionbench import benchmark
    from repro.workloads.traces import ConstantTrace

    base = default_scenario(name, day=day, seed=seed)
    # marginal tenant: meets QoS alone at this load/limit, but with no
    # headroom — the foreground's added pressure tips its queueing over
    vulnerable_spec = dataclasses.replace(
        benchmark("matmul"), name="bg_vulnerable", qos_target=2.6
    )
    vulnerable = (vulnerable_spec, ConstantTrace(8.0), 4)
    scenario = dataclasses.replace(base, background=base.background + (vulnerable,))

    rows = []
    for label, guard in (("guard on", True), ("guard off", False)):
        run = run_amoeba(scenario, guard=guard)
        fg = run.foreground(scenario)
        vuln = run.services["bg_vulnerable"].metrics
        rows.append(
            [
                label,
                fg.metrics.violation_fraction,
                vuln.violation_fraction,
                vuln.exact_percentile(95) / vulnerable_spec.qos_target,
                len(fg.switch_events),
            ]
        )
    return FigureResult(
        figure="Ablation: co-tenant guard",
        title="paper SIII: a switch-in must not break existing tenants",
        headers=["variant", "fg violations", "vulnerable bg violations", "bg p95/QoS", "switches"],
        rows=rows,
        notes="without the guard, switch-ins ignore co-tenant QoS predictions",
    )


def ablate_sample_period(
    name: str = "float", day: float = 3600.0, seed: int = 0
) -> FigureResult:
    """Eq. 8-respecting period vs. an aggressive 3 s sampler."""
    scenario = default_scenario(name, day=day, seed=seed)
    base = AmoebaConfig()
    fast = replace(base, min_sample_period=3.0, max_sample_period=3.0, min_dwell=30.0)
    rows = []
    for label, cfg in (("Eq. 8 period", base), ("3 s period", fast)):
        run = run_amoeba(scenario, config=cfg)
        viol, cores, switches = _fg_stats(run, scenario)
        rows.append([label, viol, cores, switches])
    return FigureResult(
        figure="Ablation: sample period",
        title="paper Eq. 8: the feedback window must absorb a cold start",
        headers=["variant", "fg violations", "mean cores", "switches"],
        rows=rows,
        notes="an over-eager sampler reacts to transients and flaps between modes",
    )


def ablate_keep_alive(
    name: str = "float", day: float = 3600.0, seed: int = 0
) -> FigureResult:
    """Warm-container keep-alive sweep: memory cost vs. cold-start risk.

    Between the paper's NoP extreme (no warm reuse at all) and an
    OpenWhisk-style long keep-alive lies a trade-off: short keep-alives
    return container memory quickly but re-pay cold starts whenever the
    inter-arrival gap exceeds the window.
    """
    import dataclasses

    from repro.experiments.runner import run_openwhisk
    from repro.serverless.config import ServerlessConfig

    scenario = default_scenario(name, day=day, seed=seed, with_background=False)
    rows = []
    for keep_alive in (5.0, 30.0, 60.0, 300.0):
        cfg = ServerlessConfig(keep_alive=keep_alive)
        # rebuild the scenario against this platform config (thresholds
        # depend only on overheads, which keep-alive does not touch)
        sc = dataclasses.replace(scenario)
        run = _run_openwhisk_with_config(sc, cfg)
        fg = run.foreground(sc)
        rows.append(
            [
                keep_alive,
                fg.metrics.violation_fraction,
                fg.usage.mean_memory_mb,
                fg.metrics.breakdown_sums["cold"] / max(fg.metrics.completed, 1),
            ]
        )
    return FigureResult(
        figure="Ablation: keep-alive",
        title="warm-container lifetime vs. memory footprint and cold starts",
        headers=["keep_alive (s)", "violations", "mean mem (MB)", "cold s/query"],
        rows=rows,
        notes="longer keep-alive holds more memory but re-pays fewer cold starts",
    )


def _run_openwhisk_with_config(scenario: Scenario, cfg):
    """run_openwhisk with a custom platform config (helper for sweeps)."""
    from repro.experiments.runner import RunResult, ServiceResult, _ledger_timeline
    from repro.serverless.platform import ServerlessPlatform
    from repro.sim.environment import Environment
    from repro.sim.rng import RngRegistry
    from repro.telemetry import ServiceMetrics
    from repro.workloads.loadgen import LoadGenerator

    env = Environment()
    rng = RngRegistry(seed=scenario.seed)
    platform = ServerlessPlatform(env, rng, config=cfg)
    spec = scenario.foreground
    metrics = ServiceMetrics(spec.name, spec.qos_target)
    platform.register(spec, metrics=metrics, limit=scenario.limit)
    LoadGenerator(env, spec.name, scenario.trace, platform.invoke, rng)
    env.run(until=scenario.duration)
    ledger = platform.function_ledger(spec.name)
    cpu, mem = _ledger_timeline(ledger)
    result = ServiceResult(
        spec=spec,
        metrics=metrics,
        usage=ledger.snapshot(),
        cpu_timelines=[cpu],
        mem_timelines=[mem],
    )
    return RunResult(
        system="openwhisk", duration=scenario.duration, services={spec.name: result}
    )


def ablate_discriminant(
    name: str = "matmul", day: float = 3600.0, seed: int = 0
) -> FigureResult:
    """Eq. 5 M/M/N discriminant vs. naive utilization thresholds."""
    scenario = default_scenario(name, day=day, seed=seed)
    rows = []
    configs = [
        ("Eq. 5 (M/M/N)", AmoebaConfig()),
        ("rho < 0.5", AmoebaConfig(discriminant="utilization", naive_rho_max=0.5)),
        ("rho < 0.9", AmoebaConfig(discriminant="utilization", naive_rho_max=0.9)),
    ]
    for label, cfg in configs:
        run = run_amoeba(scenario, config=cfg)
        viol, cores, switches = _fg_stats(run, scenario)
        rows.append([label, viol, cores, switches])
    return FigureResult(
        figure="Ablation: discriminant function",
        title="Eq. 5 vs. naive utilization rules",
        headers=["variant", "fg violations", "mean cores", "switches"],
        rows=rows,
        notes="a loose rho rule risks QoS; a tight one wastes IaaS time — Eq. 5 "
        "adapts to the QoS target and the calibrated mu",
    )
