"""End-to-end call-graph runs (the ``dag`` workload family).

:func:`run_graph` is the graph counterpart of
:func:`~repro.experiments.runner.run_amoeba`: one fully seeded
:class:`~repro.graph.GraphScenario` in, one
:class:`~repro.experiments.runner.RunResult` out — per-node
ServiceResults exactly like a flat run's, plus the end-to-end
:class:`~repro.graph.GraphSummary` on ``result.graph``.  Requests are
pure data and results picklable, so graph runs ride the same
``run_many`` pool / run-cache machinery as every other system.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import AmoebaConfig
from repro.graph import GraphRuntime, GraphScenario
from repro.experiments.runner import RunResult, ServiceResult

__all__ = ["run_graph"]


def run_graph(
    scenario: GraphScenario,
    seed: Optional[int] = None,
    config: Optional[AmoebaConfig] = None,
    guard: bool = True,
) -> RunResult:
    """Run one call-graph scenario under full Amoeba management."""
    gr = GraphRuntime(scenario, seed=seed, config=config, guard=guard)
    gr.run()
    rt = gr.rt

    services: Dict[str, ServiceResult] = {}
    for name, managed in gr.services.items():
        iaas_ledger = managed.iaas.ledger
        sls_ledger = rt.serverless.function_ledger(name)
        fs = rt.serverless.pool.state(name)
        services[name] = ServiceResult(
            spec=managed.spec,
            metrics=managed.metrics,
            usage=rt.service_usage(name),
            cpu_timelines=[
                (iaas_ledger.cpu_timeline.times(), iaas_ledger.cpu_timeline.values()),
                (sls_ledger.cpu_timeline.times(), sls_ledger.cpu_timeline.values()),
            ],
            mem_timelines=[
                (iaas_ledger.mem_timeline.times(), iaas_ledger.mem_timeline.values()),
                (sls_ledger.mem_timeline.times(), sls_ledger.mem_timeline.values()),
            ],
            mode_timeline=[(t, m.value) for t, m in managed.engine.mode_timeline],
            switch_events=[(t, m.value, load) for t, m, load in managed.engine.switch_events],
            decisions=list(managed.controller.decisions),
            usage_iaas=iaas_ledger.snapshot(),
            usage_serverless=sls_ledger.snapshot(),
            serverless_invocations=fs.completions,
            serverless_busy_seconds=fs.busy_seconds,
            container_memory_mb=rt.serverless.config.container_memory_mb,
            queue_depth_timelines=[
                (fs.queue_depth.times(), fs.queue_depth.values()),
                (managed.iaas.queue_depth.times(), managed.iaas.queue_depth.values()),
            ],
        )
    return RunResult(
        system="graph",
        duration=scenario.duration,
        services=services,
        meter_overhead=rt.meter_overhead(),
        meter_overheads=rt.monitor.meter_overheads(),
        graph=gr.summary(),
    )
