"""One regenerator per paper figure/table (DESIGN.md §4's experiment index).

Each ``figN_*`` function runs the experiment behind that figure and
returns a :class:`~repro.experiments.report.FigureResult` whose rows are
the same quantities the paper plots.  Heavy diurnal runs are shared
through a per-process cache (``run_triple``), so regenerating Figs. 10–13
costs one set of runs, not four.

Everything here is deterministic given (seed, day).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.meters import AXIS_METERS, profile_meter, profile_meter_measured
from repro.core.surfaces import build_surface_set, measured_surface
from repro.experiments.metrics import (
    latency_cdf,
    peak_load_iaas,
    peak_load_serverless,
)
from repro.experiments.executor import run_systems
from repro.experiments.report import FigureResult
from repro.experiments.runner import RunResult
from repro.experiments.scenarios import (
    PEAK_RATES,
    Scenario,
    default_scenario,
)
from repro.cluster import NodeSpec
from repro.iaas import IaaSPlatform, size_service
from repro.serverless import ServerlessPlatform
from repro.sim import Environment, RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads import ConstantTrace, DiurnalTrace, LoadGenerator, benchmark, benchmark_names

__all__ = [
    "cost_comparison",
    "fig2_iaas_utilization",
    "fig3_peak_loads",
    "fig4_latency_breakdown",
    "fig8_meter_curves",
    "fig9_latency_surfaces",
    "fig10_latency_cdf",
    "fig11_resource_usage",
    "fig12_switch_timeline",
    "fig13_usage_timeline",
    "fig14_nom_ablation",
    "fig15_discriminant_error",
    "fig16_nop_violations",
    "run_triple",
    "sec7e_meter_overhead",
    "table2_setup",
    "table3_benchmarks",
]

#: default compressed-day length for the figure runs, seconds
FIG_DAY = 3600.0

# ---------------------------------------------------------------------------
# shared diurnal runs (Figs. 10-14, 16 reuse these)
# ---------------------------------------------------------------------------

_TRIPLE_CACHE: Dict[Tuple[str, float, int], Tuple[Scenario, Dict[str, RunResult]]] = {}


def run_triple(
    name: str, day: float = FIG_DAY, seed: int = 0, systems: Tuple[str, ...] = ()
) -> Tuple[Scenario, Dict[str, RunResult]]:
    """The §VII scenario for ``name`` run under the requested systems.

    ``systems`` ⊆ {"amoeba", "nameko", "openwhisk", "nom", "nop"}; empty
    means the three headline systems.  Results are cached per process so
    successive figures share runs; the missing systems fan out through
    :func:`~repro.experiments.executor.run_systems`, which adds the
    process-pool and on-disk run-cache layers underneath this in-process
    one.
    """
    wanted = systems if systems else ("amoeba", "nameko", "openwhisk")
    key = (name, day, seed)
    scenario, results = _TRIPLE_CACHE.setdefault(
        key, (default_scenario(name, day=day, seed=seed), {})
    )
    missing = tuple(system for system in wanted if system not in results)
    if missing:
        results.update(run_systems(scenario, missing))
    return scenario, results


# ---------------------------------------------------------------------------
# SII investigation figures
# ---------------------------------------------------------------------------


def fig2_iaas_utilization(
    day: float = FIG_DAY, seed: int = 0, windows: int = 48
) -> FigureResult:
    """Fig. 2: min/avg/max windowed CPU utilization under just-enough IaaS."""
    rows = []
    extras: Dict[str, np.ndarray] = {}
    for name in benchmark_names():
        spec = benchmark(name)
        env = Environment()
        rng = RngRegistry(seed=seed)
        platform = IaaSPlatform(env, rng)
        metrics = ServiceMetrics(name, spec.qos_target)
        svc = platform.deploy(spec, peak_rate=PEAK_RATES[name], metrics=metrics)
        trace = DiurnalTrace(peak_rate=PEAK_RATES[name], seed=seed + 7, day=day)
        LoadGenerator(env, name, trace, platform.invoke, rng)
        rented = svc.sizing.rented_cores
        utils = []
        prev_integral = 0.0
        dt = day / windows
        for w in range(1, windows + 1):
            env.run(until=w * dt)
            integral = svc.machine.cpu_in_use.integral(env.now)
            utils.append((integral - prev_integral) / (dt * rented))
            prev_integral = integral
        u = np.asarray(utils)
        extras[name] = u
        rows.append([name, float(u.min()), float(u.mean()), float(u.max())])
    return FigureResult(
        figure="Fig. 2",
        title="CPU utilization of the benchmarks with IaaS-based deployment",
        headers=["benchmark", "lowest", "average", "highest"],
        rows=rows,
        notes="paper: lowest 2.6-15.1%, average 13.6-70.9%, highest 24.1-95.1%",
        extras={"window_utilizations": extras},
    )


def fig3_peak_loads(duration: float = 300.0, seed: int = 0) -> FigureResult:
    """Fig. 3: serverless peak load normalized to IaaS, same resources.

    "Same resources" = the serverless side gets exactly as many
    concurrent execution slots (containers) as the just-enough IaaS
    rental has worker slots; the gap that remains is the per-query
    platform overhead — the paper's explanation for the 73.9–89.2% band.
    """
    rows = []
    extras = {}
    for name in benchmark_names():
        spec = benchmark(name)
        sized_for = PEAK_RATES[name]
        sizing = size_service(spec, sized_for)
        iaas_peak = peak_load_iaas(spec, sized_for=sized_for, duration=duration, seed=seed)
        # "same amount of resources": a serverless slice exactly the size
        # of the IaaS rental, with as many container slots as it had workers
        k, flavor = sizing.vm_count, sizing.flavor
        slice_node = NodeSpec(
            name="fig3-slice",
            cores=max(int(round(k * flavor.cores)), 1),
            memory_mb=k * flavor.memory_mb,
            disk_mbps=k * flavor.io_mbps,
            net_mbps=k * flavor.net_mbps,
        )
        sls_peak = peak_load_serverless(
            spec, limit=sizing.workers, duration=duration, seed=seed, node=slice_node
        )
        ratio = sls_peak / iaas_peak if iaas_peak > 0 else float("nan")
        extras[name] = {"iaas_peak": iaas_peak, "serverless_peak": sls_peak}
        rows.append([name, iaas_peak, sls_peak, ratio])
    return FigureResult(
        figure="Fig. 3",
        title="achievable serverless peak load normalized to IaaS (same resources)",
        headers=["benchmark", "iaas peak (qps)", "serverless peak (qps)", "ratio"],
        rows=rows,
        notes="paper: ratios 0.739-0.892",
        extras=extras,
    )


def fig4_latency_breakdown(duration: float = 400.0, seed: int = 0) -> FigureResult:
    """Fig. 4: per-stage latency share on serverless (warm, unqueued).

    The paper excludes queueing and cold start here; we run each
    benchmark at a gentle rate with prewarmed containers and report the
    processing / code-loading / execution / result-posting split.
    """
    rows = []
    extras = {}
    for name in benchmark_names():
        spec = benchmark(name)
        env = Environment()
        rng = RngRegistry(seed=seed)
        platform = ServerlessPlatform(env, rng)
        metrics = ServiceMetrics(name, spec.qos_target)
        platform.register(spec, metrics=metrics)
        platform.prewarm(name, 4)
        rate = 0.25 * PEAK_RATES[name]
        LoadGenerator(env, name, ConstantTrace(rate), platform.invoke, rng)
        env.run(until=duration)
        sums = metrics.breakdown_sums
        core = sums["proc"] + sums["load"] + sums["exec"] + sums["post"]
        frac = {k: sums[k] / core for k in ("proc", "load", "exec", "post")}
        overhead = frac["proc"] + frac["load"] + frac["post"]
        extras[name] = frac
        rows.append([name, frac["proc"], frac["load"], frac["exec"], frac["post"], overhead])
    return FigureResult(
        figure="Fig. 4",
        title="latency breakdown of serverless queries (queueing/cold start excluded)",
        headers=["benchmark", "processing", "code load", "execution", "result post", "overhead total"],
        rows=rows,
        notes="paper: extra overheads take 10-45% of end-to-end latency",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# SIV/SVI profiling figures
# ---------------------------------------------------------------------------


def fig8_meter_curves(points: int = 7, queries_per_point: int = 50, seed: int = 7) -> FigureResult:
    """Fig. 8: meter latency vs. pressure, measured and analytic."""
    rows = []
    extras = {}
    for name in AXIS_METERS:
        measured = profile_meter_measured(
            name, points=points, queries_per_point=queries_per_point, seed=seed
        )
        analytic = profile_meter(name, points=points)
        extras[name] = {"measured": measured, "analytic": analytic}
        for p, lm in zip(measured.pressures, measured.latencies):
            la = analytic.latency(float(p))
            rows.append([name, float(p), float(lm), la, abs(lm - la) / la])
    return FigureResult(
        figure="Fig. 8",
        title="contention-meter latency vs. pressure (measured vs. analytic)",
        headers=["meter", "pressure", "measured (s)", "analytic (s)", "rel diff"],
        rows=rows,
        notes="curves are monotone; inversion of the measured curve is the measurement step",
        extras=extras,
    )


def fig9_latency_surfaces(
    service: str = "dd",
    pressures: Tuple[float, ...] = (0.0, 0.5, 1.0, 1.4),
    load_fractions: Tuple[float, ...] = (0.0, 0.3, 0.6),
    duration: float = 90.0,
    seed: int = 11,
) -> FigureResult:
    """Fig. 9: an example microservice's latency surfaces (3 axes)."""
    spec = benchmark(service)
    loads = tuple(f * PEAK_RATES[service] for f in load_fractions)
    analytic = build_surface_set(spec)
    rows = []
    extras = {"analytic": analytic, "measured": {}}
    for axis, axis_name in enumerate(("cpu", "io", "net")):
        surf = measured_surface(
            spec, axis, pressures, loads, duration=duration, seed=seed
        )
        extras["measured"][axis_name] = surf
        for i, p in enumerate(pressures):
            for j, v in enumerate(loads):
                measured_val = float(surf.values[i, j])
                analytic_val = analytic.surfaces[axis].predict(float(p), float(v))
                rows.append([service, axis_name, float(p), float(v), measured_val, analytic_val])
    return FigureResult(
        figure="Fig. 9",
        title=f"latency surfaces of {service}: service latency over (pressure, load)",
        headers=["service", "axis", "pressure", "load (qps)", "measured (s)", "analytic (s)"],
        rows=rows,
        notes="latency grows with the pressure on axes the service is sensitive to",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# SVII evaluation figures
# ---------------------------------------------------------------------------


def fig10_latency_cdf(day: float = FIG_DAY, seed: int = 0) -> FigureResult:
    """Fig. 10: latency CDFs normalized to QoS for the three systems."""
    rows = []
    extras = {}
    for name in benchmark_names():
        scenario, results = run_triple(name, day=day, seed=seed)
        per_system = {}
        for system in ("amoeba", "nameko", "openwhisk"):
            fg = results[system].foreground(scenario)
            lat = fg.metrics.latencies.values()
            x, f = latency_cdf(lat, scenario.foreground.qos_target)
            p95_ratio = fg.metrics.latency_percentile(95) / scenario.foreground.qos_target
            per_system[system] = {
                "cdf": (x, f),
                "p95_ratio": p95_ratio,
                "violation_fraction": fg.metrics.violation_fraction,
            }
            rows.append(
                [name, system, p95_ratio, fg.metrics.violation_fraction, p95_ratio <= 1.0]
            )
        extras[name] = per_system
    return FigureResult(
        figure="Fig. 10",
        title="95%-ile latency / QoS target per system (CDFs in extras)",
        headers=["benchmark", "system", "p95 / QoS", "violation frac", "meets QoS"],
        rows=rows,
        notes="paper: Amoeba+Nameko meet QoS everywhere; OpenWhisk violates matmul/dd/cloud_stor",
        extras=extras,
    )


def fig11_resource_usage(day: float = FIG_DAY, seed: int = 0) -> FigureResult:
    """Fig. 11: Amoeba's CPU/memory usage normalized to Nameko."""
    rows = []
    extras = {}
    for name in benchmark_names():
        scenario, results = run_triple(name, day=day, seed=seed, systems=("amoeba", "nameko"))
        fa = results["amoeba"].foreground(scenario)
        fn = results["nameko"].foreground(scenario)
        cpu_ratio, mem_ratio = fa.usage.normalized_to(fn.usage)
        extras[name] = {"cpu_ratio": cpu_ratio, "mem_ratio": mem_ratio}
        rows.append([name, cpu_ratio, mem_ratio, 1 - cpu_ratio, 1 - mem_ratio])
    return FigureResult(
        figure="Fig. 11",
        title="normalized resource usage of Amoeba vs. Nameko",
        headers=["benchmark", "cpu ratio", "mem ratio", "cpu reduction", "mem reduction"],
        rows=rows,
        notes="paper: CPU reduced 29.1-72.9%, memory reduced 30.2-84.9%",
        extras=extras,
    )


def fig12_switch_timeline(
    services: Tuple[str, ...] = ("float", "dd"), day: float = FIG_DAY, seed: int = 0
) -> FigureResult:
    """Fig. 12: deploy-mode switch timeline with the switch-load markers."""
    rows = []
    extras = {}
    for name in services:
        scenario, results = run_triple(name, day=day, seed=seed, systems=("amoeba",))
        fg = results["amoeba"].foreground(scenario)
        grid = np.linspace(0, scenario.duration, 240)
        load_curve = np.array([scenario.trace.rate(float(t)) for t in grid])
        extras[name] = {
            "mode_timeline": fg.mode_timeline,
            "switch_events": fg.switch_events,
            "load_grid": (grid, load_curve),
        }
        for t, direction, load in fg.switch_events:
            rows.append([name, t, direction, load])
    in_loads = [r[3] for r in rows if r[2] == "serverless"]
    out_loads = [r[3] for r in rows if r[2] == "iaas"]
    notes = "paper: switch loads are not identical across directions/times"
    if in_loads and out_loads:
        notes += (
            f" | mean switch-in load {np.mean(in_loads):.2f} qps,"
            f" mean switch-out load {np.mean(out_loads):.2f} qps"
        )
    return FigureResult(
        figure="Fig. 12",
        title="timeline of deploy-mode switches (stars = switch loads)",
        headers=["benchmark", "time (s)", "switch to", "load (qps)"],
        rows=rows,
        notes=notes,
        extras=extras,
    )


def fig13_usage_timeline(
    services: Tuple[str, ...] = ("float", "dd"), day: float = FIG_DAY, seed: int = 0, points: int = 160
) -> FigureResult:
    """Fig. 13: resource-usage timelines under Amoeba (abrupt vs. smooth)."""
    rows = []
    extras = {}
    for name in services:
        scenario, results = run_triple(name, day=day, seed=seed, systems=("amoeba",))
        fg = results["amoeba"].foreground(scenario)
        grid = np.linspace(0, scenario.duration, points)
        cpu = fg.cpu_usage_on_grid(grid)
        mem = fg.mem_usage_on_grid(grid)
        jumps = np.abs(np.diff(cpu))
        scale = max(cpu.max(), 1e-9)
        extras[name] = {"grid": grid, "cpu": cpu, "mem": mem}
        rows.append(
            [name, float(cpu.mean()), float(cpu.max()), float(mem.mean()), float(mem.max()), float(jumps.max() / scale)]
        )
    return FigureResult(
        figure="Fig. 13",
        title="resource usage timeline under Amoeba (series in extras)",
        headers=["benchmark", "cpu mean", "cpu max", "mem mean (MB)", "mem max (MB)", "max step / max"],
        rows=rows,
        notes="paper: tight-QoS services change abruptly (float), others smoothly (dd)",
        extras=extras,
    )


def fig14_nom_ablation(day: float = FIG_DAY, seed: int = 0) -> FigureResult:
    """Fig. 14: resource usage of Amoeba vs. Amoeba-NoM (vs. Nameko)."""
    rows = []
    extras = {}
    for name in benchmark_names():
        scenario, results = run_triple(
            name, day=day, seed=seed, systems=("amoeba", "nameko", "nom")
        )
        fn = results["nameko"].foreground(scenario)
        fa = results["amoeba"].foreground(scenario)
        fm = results["nom"].foreground(scenario)
        a_cpu, a_mem = fa.usage.normalized_to(fn.usage)
        m_cpu, m_mem = fm.usage.normalized_to(fn.usage)
        extras[name] = {
            "amoeba": (a_cpu, a_mem),
            "nom": (m_cpu, m_mem),
            "nom_over_amoeba": (m_cpu / a_cpu, m_mem / a_mem),
        }
        rows.append([name, a_cpu, m_cpu, m_cpu / a_cpu, a_mem, m_mem, m_mem / a_mem])
    return FigureResult(
        figure="Fig. 14",
        title="normalized usage: Amoeba vs. Amoeba-NoM (baseline Nameko)",
        headers=["benchmark", "cpu amoeba", "cpu nom", "cpu nom/amoeba", "mem amoeba", "mem nom", "mem nom/amoeba"],
        rows=rows,
        notes="paper: NoM uses up to 1.77x CPU and 2.38x memory of Amoeba",
        extras=extras,
    )


def fig15_discriminant_error(
    day: float = FIG_DAY, seed: int = 0, duration: float = 240.0
) -> FigureResult:
    """Fig. 15: error of the discriminant λ(μ) vs. the enumerated λ_real.

    λ_real: bisection on the shared serverless platform with the
    scenario's background services held at their mean rates.  λ(μ):
    each variant's controller log, averaged over the settled second half
    of the diurnal run.
    """
    rows = []
    extras = {}
    for name in benchmark_names():
        scenario, results = run_triple(name, day=day, seed=seed, systems=("amoeba", "nom"))
        background = tuple(
            (bg_spec, bg_trace.mean_rate(0, scenario.duration), bg_limit)
            for bg_spec, bg_trace, bg_limit in scenario.background
        )
        lam_real = peak_load_serverless(
            scenario.foreground,
            limit=scenario.limit,
            duration=duration,
            seed=seed,
            background=background,
            ambient_pressures=scenario.mean_ambient_pressures(),
        )
        per_variant = {}
        for variant in ("amoeba", "nom"):
            fg = results[variant].foreground(scenario)
            # skip the calibration warm-up, then average over the full
            # day so the ambient-pressure mix matches the λ_real probe's
            # mean-pressure conditions
            settled = [d.lambda_max for d in fg.decisions if d.time >= 0.15 * scenario.duration]
            lam_pred = float(np.mean(settled)) if settled else float("nan")
            err = abs(lam_pred - lam_real) / lam_real if lam_real > 0 else float("nan")
            per_variant[variant] = {"lambda_pred": lam_pred, "error": err}
            rows.append([name, variant, lam_real, lam_pred, err])
        extras[name] = {"lambda_real": lam_real, **per_variant}
    return FigureResult(
        figure="Fig. 15",
        title="average discriminant-function error vs. enumerated switch point",
        headers=["benchmark", "variant", "lambda_real (qps)", "lambda_pred (qps)", "rel error"],
        rows=rows,
        notes="paper: Amoeba errors 2.8-8.3% vs. NoM 9.1-25.8%",
        extras=extras,
    )


def fig16_nop_violations(day: float = FIG_DAY, seed: int = 0) -> FigureResult:
    """Fig. 16: QoS violations without the prewarm module (Amoeba-NoP)."""
    rows = []
    extras = {}
    for name in benchmark_names():
        scenario, results = run_triple(name, day=day, seed=seed, systems=("amoeba", "nop"))
        fa = results["amoeba"].foreground(scenario)
        fp = results["nop"].foreground(scenario)
        extras[name] = {
            "amoeba": fa.metrics.violation_fraction,
            "nop": fp.metrics.violation_fraction,
        }
        rows.append([name, fa.metrics.violation_fraction, fp.metrics.violation_fraction])
    return FigureResult(
        figure="Fig. 16",
        title="QoS violation fraction: Amoeba vs. Amoeba-NoP",
        headers=["benchmark", "amoeba violations", "nop violations"],
        rows=rows,
        notes="paper: 29.9-69.1% of queries violate QoS with Amoeba-NoP",
        extras=extras,
    )


def sec7e_meter_overhead(day: float = FIG_DAY, seed: int = 0) -> FigureResult:
    """§VII-E: CPU overhead of the contention meters at 1 QPS each."""
    scenario, results = run_triple("float", day=day, seed=seed, systems=("amoeba",))
    run = results["amoeba"]
    rows = [[meter, overhead] for meter, overhead in sorted(run.meter_overheads.items())]
    rows.append(["total", run.meter_overhead])
    return FigureResult(
        figure="SVII-E",
        title="mean CPU overhead of the contention meters (fraction of the node)",
        headers=["meter", "cpu overhead"],
        rows=rows,
        notes="paper: 1.1% / 0.5% / 0.6% per meter, <= 1.1% total when round-robined "
        "(fractions of one worker's allocation; ours are of the whole 40-core node)",
        extras={"overheads": run.meter_overheads},
    )


def cost_comparison(day: float = FIG_DAY, seed: int = 0) -> FigureResult:
    """Maintainer-side dollar bill per system (extension; paper §I motivation).

    Uses :mod:`repro.cluster.pricing`: IaaS bills rented core/GB-hours for
    the whole uptime; serverless bills per invocation plus GB-seconds of
    billed execution.  One compressed day, extrapolated to a 30-day month
    of real time for readability.
    """
    from repro.cluster.pricing import PricingModel

    pricing = PricingModel()
    rows = []
    extras = {}
    # a compressed day stands for a real day: scale the bill accordingly
    scale = (86400.0 / day) * 30.0
    for name in benchmark_names():
        scenario, results = run_triple(name, day=day, seed=seed)
        baseline = None
        for system in ("nameko", "amoeba", "openwhisk"):
            fg = results[system].foreground(scenario)
            bill = fg.cost(pricing)
            if system == "nameko":
                baseline = bill
            ratio = bill.normalized_to(baseline) if baseline and baseline.total > 0 else float("nan")
            extras[(name, system)] = bill
            rows.append(
                [
                    name,
                    system,
                    bill.iaas_dollars * scale,
                    bill.serverless_dollars * scale,
                    bill.total * scale,
                    ratio,
                ]
            )
    return FigureResult(
        figure="Cost",
        title="maintainer bill per 30 days (extension)",
        headers=["benchmark", "system", "iaas $", "serverless $", "total $", "vs nameko"],
        rows=rows,
        notes="IaaS bills the rental whether busy or not; serverless bills per use",
        extras=extras,
    )


# ---------------------------------------------------------------------------
# tables
# ---------------------------------------------------------------------------


def table2_setup() -> FigureResult:
    """Table II: the hardware/software constants the simulation encodes."""
    from repro.cluster.spec import CLUSTER_TABLE_II

    node = CLUSTER_TABLE_II.serverless_node
    rows = [
        ["cores per node", node.cores],
        ["DRAM per node (MB)", node.memory_mb],
        ["NIC (MB/s)", node.net_mbps],
        ["disk (MB/s)", node.disk_mbps],
        ["container memory (MB)", CLUSTER_TABLE_II.container_memory_mb],
        ["max containers by memory", CLUSTER_TABLE_II.max_containers_by_memory],
    ]
    return FigureResult(
        figure="Table II",
        title="hardware and software setup",
        headers=["item", "value"],
        rows=rows,
        notes="Xeon 8163 40 cores / 256 GB / NVMe / 25 GbE; OpenWhisk + Nameko",
    )


def table3_benchmarks() -> FigureResult:
    """Table III: the benchmark sensitivity matrix as concrete specs."""
    rows = []
    for name in benchmark_names():
        s = benchmark(name)
        rows.append(
            [
                name,
                s.exec_time,
                s.qos_target,
                s.demand.cpu,
                s.demand.io_mbps,
                s.demand.net_mbps,
                s.sensitivity.cpu,
                s.sensitivity.io,
                s.sensitivity.net,
            ]
        )
    return FigureResult(
        figure="Table III",
        title="benchmark specs (exec time, QoS, demand, sensitivity)",
        headers=["name", "exec (s)", "QoS (s)", "cpu", "io MB/s", "net MB/s", "s_cpu", "s_io", "s_net"],
        rows=rows,
        notes="sensitivity ordering follows the paper's Table III (high/medium/low/-)",
    )
