"""The ``dag`` sweep: call-graph chains under cascade failure.

Drives :class:`~repro.graph.GraphScenario` chains through the standard
``run_many`` pool/cache machinery at a fixed overload factor with a
mid-chain brownout burst, and compares two retry disciplines per depth:

* **budgeted** — bounded attempts, deadline-aware give-up, deadline
  propagation and graph-aware backpressure on (the resilient stack);
* **naive** — a deadline-blind high-cap retry client with backpressure
  and propagation off (the retry-storm baseline).

The acceptance claim (check.sh retry-storm gate): at 2.5x overload on a
4-deep chain the budgeted stack keeps the end-to-end QoS-violation rate
of completed requests under :data:`VIOLATION_BOUND` while the naive
baseline exceeds it and issues an order of magnitude more retries —
and both legs are ``float.hex``-deterministic across reruns and worker
counts.

CLI: ``python -m repro.experiments dag [--depth N --seed S --day D]``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.experiments.executor import RunRequest, run_many
from repro.experiments.report import FigureResult
from repro.experiments.scenarios import sized_reservoir
from repro.graph import (
    BrownoutSpec,
    GraphScenario,
    GraphSummary,
    RetryPolicy,
    chain_topology,
)
from repro.overload import OverloadPolicy
from repro.workloads import ConstantTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.cache import RunCache

__all__ = ["dag_scenario", "dag_sweep", "storm_comparison"]

#: default simulated duration of one dag run, seconds
DAG_DAY = 240.0
#: chain-length ablation points
DEFAULT_DEPTHS = (1, 2, 4, 6)
#: offered load as a multiple of what the per-node rentals are sized for
OVERLOAD_FACTOR = 2.5
#: nominal per-node rate the rentals are sized for, queries/s
NOMINAL_RATE = 2.0
#: per-node end-to-end budget share used for the default target, seconds
E2E_PER_NODE = 0.75
#: acceptance bound on the budgeted stack's end-to-end violation
#: fraction (completed requests) at 2.5x overload, 4-deep chain
VIOLATION_BOUND = 0.10
#: interfering brownout load aimed at the mid-chain node, queries/s
BROWNOUT_RATE = 60.0


def dag_scenario(
    depth: int,
    seed: int = 0,
    day: float = DAG_DAY,
    factor: float = OVERLOAD_FACTOR,
    resilient: bool = True,
    benchmark_name: str = "matmul",
    e2e_target: Optional[float] = None,
    brownout_rate: float = BROWNOUT_RATE,
) -> GraphScenario:
    """A chain-of-``depth`` cascade scenario at ``factor``x overload.

    The rentals are sized for :data:`NOMINAL_RATE` while the root trace
    offers ``factor`` times that; the middle node additionally takes a
    :data:`BROWNOUT_RATE` interference burst over the middle half of the
    run.  ``resilient`` selects the budgeted/deadline-aware/backpressure
    stack; False selects the naive storm baseline.
    """
    topo = chain_topology(depth, benchmark_name)
    mid = topo.nodes[depth // 2].name
    return GraphScenario(
        name=f"dag-chain{depth}-{'budgeted' if resilient else 'naive'}",
        topology=topo,
        trace=ConstantTrace(NOMINAL_RATE * factor),
        e2e_target=e2e_target if e2e_target is not None else E2E_PER_NODE * depth,
        duration=day,
        seed=seed,
        retry=RetryPolicy.budgeted() if resilient else RetryPolicy.storm(),
        backpressure=resilient,
        propagate_deadlines=resilient,
        overload=OverloadPolicy(),
        iaas_peak_rate=NOMINAL_RATE,
        reservoir=sized_reservoir(ConstantTrace(NOMINAL_RATE * factor), day),
        brownout=BrownoutSpec(
            node=mid, t_start=0.25 * day, t_end=0.75 * day, rate=brownout_rate
        ),
    )


def storm_comparison(
    depth: int = 4,
    seed: int = 0,
    day: float = DAG_DAY,
    workers: Optional[int] = None,
    cache: Union["RunCache", None, bool] = None,
) -> Dict[str, GraphSummary]:
    """The budgeted-vs-naive pair behind the retry-storm acceptance gate."""
    requests = [
        RunRequest(system="graph", scenario=dag_scenario(depth, seed=seed, day=day)),
        RunRequest(
            system="graph", scenario=dag_scenario(depth, seed=seed, day=day, resilient=False)
        ),
    ]
    budgeted, naive = run_many(requests, workers=workers, cache=cache)
    assert budgeted.graph is not None and naive.graph is not None
    return {"budgeted": budgeted.graph, "naive": naive.graph}


def dag_sweep(
    day: float = DAG_DAY,
    seed: int = 0,
    depths: Sequence[int] = DEFAULT_DEPTHS,
    workers: Optional[int] = None,
    cache: Union["RunCache", None, bool] = None,
) -> FigureResult:
    """Chain-length ablation: budgeted vs naive resilience per depth.

    Every (depth, discipline) leg is one independent seeded graph run
    fanned out through :func:`~repro.experiments.executor.run_many`, so
    the table is ``float.hex``-identical for any worker count and every
    leg lands in the content-addressed run cache.
    """
    if not depths:
        raise ValueError("need at least one chain depth")
    requests = []
    for depth in depths:
        for resilient in (True, False):
            requests.append(
                RunRequest(
                    system="graph",
                    scenario=dag_scenario(depth, seed=seed, day=day, resilient=resilient),
                )
            )
    results = run_many(requests, workers=workers, cache=cache)
    rows: List[list] = []
    summaries: Dict[int, Dict[str, GraphSummary]] = {}
    for i, depth in enumerate(depths):
        pair = {}
        for j, label in enumerate(("budgeted", "naive")):
            summary = results[2 * i + j].graph
            assert summary is not None
            pair[label] = summary
            rows.append(
                [
                    depth,
                    label,
                    summary.e2e_target,
                    summary.offered,
                    summary.completed,
                    summary.failed,
                    summary.violations,
                    summary.violation_fraction,
                    summary.violation_fraction_with_failures,
                    summary.retries.get("attempted", 0),
                    summary.retries.get("exhausted", 0),
                    summary.retries.get("deadline_abandoned", 0),
                    summary.total_backpressure_sheds,
                    summary.p95(),
                ]
            )
        summaries[depth] = pair
    return FigureResult(
        figure="dag",
        title=(
            f"call-graph chains at {OVERLOAD_FACTOR:g}x overload with mid-chain "
            f"brownout (seed {seed}, day {day:g}s, matmul)"
        ),
        headers=[
            "depth",
            "retry",
            "e2e_qos",
            "offered",
            "completed",
            "failed",
            "viol",
            "viol_frac",
            "viol_w_fail",
            "r_attempted",
            "r_exhausted",
            "r_deadline",
            "bp_sheds",
            "e2e_p95",
        ],
        rows=rows,
        notes=(
            "budgeted = bounded deadline-aware retries + deadline propagation "
            "+ graph-aware backpressure; naive = deadline-blind 64-attempt "
            "client, no propagation, no backpressure.  viol_frac is over "
            "completed requests; viol_w_fail counts abandoned requests as "
            "violations.  r_* is the unified retries{kind} family summed over "
            "nodes; bp_sheds the dispatches shed at an edge whose target was "
            "browned out."
        ),
        extras={"summaries": summaries},
    )
