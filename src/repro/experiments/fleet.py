"""Fleet-scale sweep: hundreds of services through the run executor.

The fleet scenario family (DESIGN.md §11) answers the question the
per-benchmark figures cannot: what does Amoeba buy *in aggregate* when a
whole fleet of heterogeneous, phase-offset diurnal services runs under
it?  Each fleet member is an independent seeded scenario, so the sweep
shards perfectly across the :func:`~repro.experiments.executor.run_many`
process pool — results are merged in submission order and the report is
``float.hex``-identical for any worker count.

The per-family rows carry two analytic columns (mean ρ and predicted
p95/QoS at the mean rate, from the log-space Eq. 1–4 implementation in
:mod:`repro.sim.queueing`) next to the observed ones; the fleet
validation tests tighten this comparison on quiescent constant-rate
slices where the M/M/N reference is exact up to service-time shape.

This module also owns the fleet's Eq. 5 *sizing*: the parameter draws
live in :mod:`repro.workloads.fleet` (pure workloads-layer code), and
:func:`generate_fleet` here injects :func:`fleet_threshold` as the
member-sizing hook — the experiments layer is the only place allowed to
see both the workload generator and the platform/queueing stack
(DESIGN.md §12, ARCH001).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Tuple, Union

from repro.core.meters import expected_platform_overhead
from repro.experiments.executor import RunRequest, run_many
from repro.experiments.report import FigureResult
from repro.experiments.scenarios import Scenario, sized_reservoir
from repro.serverless import ServerlessConfig
from repro.sim.queueing import max_arrival_rate, sojourn_quantile
from repro.workloads.fleet import (
    DEFAULT_DAILY_QUERIES,
    FleetService,
    fleet_daily_queries,
)
from repro.workloads.fleet import generate_fleet as _generate_members
from repro.workloads import MicroserviceSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.cache import RunCache

__all__ = [
    "FLEET_DAY",
    "analytic_service_prediction",
    "fleet_scenarios",
    "fleet_sweep",
    "fleet_threshold",
    "generate_fleet",
]

#: default compressed-day length for fleet runs: one diurnal cycle in
#: 600 simulated seconds.  Fleet sweeps multiply everything by the fleet
#: size, so they compress harder than the single-service figures.
FLEET_DAY = 600.0


def fleet_threshold(
    spec: MicroserviceSpec,
    peak_rate: float,
    fraction: float,
    cfg: Optional[ServerlessConfig] = None,
) -> int:
    """Concurrency cap for one fleet member (Eq. 5 ceiling sizing).

    Same contract as
    :func:`repro.experiments.scenarios.concurrency_threshold`, with the
    search cap raised to the fleet scale: the smallest n whose
    uncontended admissible rate reaches ``fraction * peak_rate``.
    """
    cfg = cfg if cfg is not None else ServerlessConfig()
    mu0 = 1.0 / (spec.exec_time + expected_platform_overhead(spec, cfg))
    target = fraction * peak_rate
    n = 1
    while max_arrival_rate(mu0, n, spec.qos_target, 0.95) < target:
        n += 1
        if n > 65536:
            raise ValueError(f"{spec.name}: fleet threshold search ran away")
    return n


def generate_fleet(
    services: int,
    daily_queries: float = DEFAULT_DAILY_QUERIES,
    day: float = 600.0,
    seed: int = 0,
    cfg: Optional[ServerlessConfig] = None,
) -> Tuple[FleetService, ...]:
    """Deterministic heterogeneous fleet, members sized by Eq. 5.

    The parameter draws are :func:`repro.workloads.fleet.generate_fleet`
    (see its docstring for the determinism contract); this wrapper
    injects :func:`fleet_threshold` under ``cfg`` as each member's
    concurrency-cap sizing.
    """
    sized = cfg if cfg is not None else ServerlessConfig()

    def limit_fn(spec: MicroserviceSpec, peak: float, fraction: float) -> int:
        return fleet_threshold(spec, peak, fraction, sized)

    return _generate_members(
        services, daily_queries=daily_queries, day=day, seed=seed, limit_fn=limit_fn
    )


def analytic_service_prediction(
    svc: FleetService, cfg: Optional[ServerlessConfig] = None, r: float = 0.95
) -> Tuple[float, float]:
    """Steady-state M/M/N reference for one fleet member on serverless.

    Returns ``(rho, p95_sojourn)`` at the service's *mean* arrival rate
    against its concurrency cap, with the uncontended per-container rate
    μ₀ = 1/(exec + α).  ``p95_sojourn`` is ``inf`` when the mean load
    alone saturates the cap (ρ >= 1).  These are references for the
    fleet report's analytic columns and the fleet validation tests — the
    simulator's lognormal service times make M/M/N an approximation (an
    upper bound on the wait tail whenever the service-time CV is below
    exponential's).
    """
    cfg = cfg if cfg is not None else ServerlessConfig()
    mu0 = 1.0 / (svc.spec.exec_time + expected_platform_overhead(svc.spec, cfg))
    rho = svc.mean_rate / (svc.limit * mu0)
    if rho >= 1.0:
        return rho, math.inf
    return rho, sojourn_quantile(r, svc.mean_rate, mu0, svc.limit)


def fleet_scenarios(
    services: int = 100,
    daily_queries: float = DEFAULT_DAILY_QUERIES,
    day: float = FLEET_DAY,
    seed: int = 0,
) -> Tuple[Tuple[FleetService, Scenario], ...]:
    """The fleet plus one independent scenario per member.

    Each member runs alone (no background mix, no ambient tenants): the
    fleet *is* the workload, and independence is what lets the sweep
    shard across processes while staying bit-deterministic.  Runtime
    seeds are spread per member so no two services share RNG streams.
    """
    fleet = generate_fleet(services, daily_queries=daily_queries, day=day, seed=seed)
    out = []
    for svc in fleet:
        scenario = Scenario(
            foreground=svc.spec,
            trace=svc.trace,
            limit=svc.limit,
            background=(),
            duration=day,
            seed=seed + 1_000_003 * (svc.index + 1),
            ambient=(),
            reservoir=sized_reservoir(svc.trace, day),
        )
        out.append((svc, scenario))
    return tuple(out)


def fleet_sweep(
    services: int = 100,
    daily_queries: float = DEFAULT_DAILY_QUERIES,
    day: float = FLEET_DAY,
    seed: int = 0,
    workers: Optional[int] = None,
    cache: Union["RunCache", None, bool] = None,
) -> FigureResult:
    """Run the whole fleet under Amoeba; aggregate per family.

    Reports, per FunctionBench family: observed QoS-violation fraction,
    mean p95/QoS ratio, switch counts, serverless share of invocations
    and the maintainer bill, next to the analytic mean-load utilization
    and predicted p95/QoS columns.  ``workers``/``cache`` default to the
    process-wide executor configuration.
    """
    pairs = fleet_scenarios(services, daily_queries=daily_queries, day=day, seed=seed)
    requests = [RunRequest(system="amoeba", scenario=scenario) for _, scenario in pairs]
    results = run_many(requests, workers=workers, cache=cache)

    per_service: List[Tuple] = []
    families: dict = {}
    for (svc, scenario), result in zip(pairs, results):
        sr = result.foreground(scenario)
        m = sr.metrics
        p95 = m.latency_percentile(95.0) if m.completed else 0.0
        rho, p95_pred = analytic_service_prediction(svc)
        cost = sr.cost().total
        switches = len(sr.switch_events)
        sls_share = sr.serverless_invocations / m.completed if m.completed else 0.0
        per_service.append(
            (
                svc.spec.name,
                svc.family,
                m.completed,
                m.violation_fraction,
                p95,
                svc.spec.qos_target,
                switches,
                sls_share,
                cost,
                rho,
                p95_pred,
            )
        )
        fam = families.setdefault(
            svc.family,
            {
                "services": 0,
                "rate": 0.0,
                "completed": 0,
                "violations": 0,
                "p95_ratio": 0.0,
                "switches": 0,
                "sls_inv": 0,
                "cost": 0.0,
                "rho": 0.0,
                "p95_pred_ratio": 0.0,
                "pred_n": 0,
            },
        )
        fam["services"] += 1
        fam["rate"] += svc.mean_rate
        fam["completed"] += m.completed
        fam["violations"] += m.violations
        fam["p95_ratio"] += p95 / svc.spec.qos_target
        fam["switches"] += switches
        fam["sls_inv"] += sr.serverless_invocations
        fam["cost"] += cost
        fam["rho"] += rho
        if math.isfinite(p95_pred):
            # mean-load-saturated members (rho >= 1) have no finite
            # steady-state prediction; average over the rest
            fam["p95_pred_ratio"] += p95_pred / svc.spec.qos_target
            fam["pred_n"] += 1

    headers = [
        "family",
        "services",
        "rate q/s",
        "completed",
        "viol %",
        "p95/qos",
        "pred rho",
        "pred p95/qos",
        "switches",
        "sls share",
        "cost $",
    ]
    rows = []
    for family in sorted(families):
        f = families[family]
        n = f["services"]
        rows.append(
            [
                family,
                n,
                f["rate"],
                f["completed"],
                100.0 * f["violations"] / f["completed"] if f["completed"] else 0.0,
                f["p95_ratio"] / n,
                f["rho"] / n,
                f["p95_pred_ratio"] / f["pred_n"] if f["pred_n"] else math.inf,
                f["switches"],
                f["sls_inv"] / f["completed"] if f["completed"] else 0.0,
                f["cost"],
            ]
        )
    total_completed = sum(f["completed"] for f in families.values())
    total_cost = sum(f["cost"] for f in families.values())
    total_switches = sum(f["switches"] for f in families.values())
    notes = (
        f"{services} services, {fleet_daily_queries(tuple(p[0] for p in pairs)):,.0f} "
        f"queries/day aggregate, day={day:g}s compressed; "
        f"{total_completed} completed, {total_switches} switches, "
        f"${total_cost:.2f} total bill.  'pred' columns are steady-state "
        "M/M/N references at each service's mean rate (Eq. 1-4, log-space)."
    )
    return FigureResult(
        figure="fleet",
        title="fleet-scale aggregate QoS / cost under Amoeba",
        headers=headers,
        rows=rows,
        notes=notes,
        extras={
            "per_service": per_service,
            "services": services,
            "daily_queries": daily_queries,
            "day": day,
            "seed": seed,
            "total_completed": total_completed,
            "total_cost": total_cost,
        },
    )
