"""Export regenerated figures to JSON / CSV, plus ASCII timeline plots.

``FigureResult`` rows become CSV; the full object (rows + serializable
extras) becomes JSON, so downstream plotting (matplotlib, gnuplot, a
spreadsheet) can regenerate the paper's graphics from committed data.
The ASCII renderers give the Fig. 12/13 timelines a terminal-native form
— the benches print them so the mode-switch story is visible without any
plotting stack.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, List, Sequence, Tuple

import numpy as np

from repro.experiments.report import FigureResult

__all__ = [
    "ascii_mode_timeline",
    "ascii_series",
    "figure_to_csv",
    "figure_to_json",
]


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of extras to JSON-serializable structures."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)  # profiles/surfaces etc.: keep a readable stub


def figure_to_csv(result: FigureResult, path) -> Path:
    """Write the figure's rows as CSV with a header line."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(result.headers)
        writer.writerows(result.rows)
    return path


def figure_to_json(result: FigureResult, path) -> Path:
    """Write the whole figure (rows, notes, extras) as JSON."""
    path = Path(path)
    payload = {
        "figure": result.figure,
        "title": result.title,
        "headers": result.headers,
        "rows": _jsonable(result.rows),
        "notes": result.notes,
        "extras": _jsonable(result.extras),
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def ascii_series(
    grid: Sequence[float],
    values: Sequence[float],
    width: int = 72,
    height: int = 10,
    label: str = "",
) -> str:
    """A terminal line plot of one series (Fig. 13's usage curves)."""
    g = np.asarray(grid, dtype=float)
    v = np.asarray(values, dtype=float)
    if g.size != v.size or g.size < 2:
        raise ValueError("need matching grids with >= 2 points")
    if width < 10 or height < 3:
        raise ValueError("plot too small to be legible")
    # resample onto the character grid
    xs = np.linspace(g[0], g[-1], width)
    ys = np.interp(xs, g, v)
    v_max = float(ys.max())
    v_min = float(min(ys.min(), 0.0))
    span = (v_max - v_min) or 1.0
    rows = [[" "] * width for _ in range(height)]
    for col, y in enumerate(ys):
        level = int(round((y - v_min) / span * (height - 1)))
        rows[height - 1 - level][col] = "*"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"{v_max:10.2f} ┤" + "".join(rows[0]))
    for row in rows[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{v_min:10.2f} ┤" + "".join(rows[-1]))
    lines.append(" " * 12 + f"t={g[0]:.0f}s" + " " * max(width - 20, 1) + f"t={g[-1]:.0f}s")
    return "\n".join(lines)


def ascii_mode_timeline(
    mode_timeline: List[Tuple[float, str]],
    duration: float,
    width: int = 72,
    label: str = "",
) -> str:
    """Fig. 12 as a character strip: '▆' = IaaS, '░' = serverless."""
    if not mode_timeline:
        raise ValueError("empty mode timeline")
    if duration <= 0:
        raise ValueError("duration must be positive")
    chars = []
    for col in range(width):
        t = (col + 0.5) / width * duration
        mode = mode_timeline[0][1]
        for ts, m in mode_timeline:
            if ts > t:
                break
            mode = m
        chars.append("▆" if mode == "iaas" else "░")
    head = f"{label} " if label else ""
    return f"{head}|{''.join(chars)}|  (▆ IaaS, ░ serverless)"
