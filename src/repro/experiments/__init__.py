"""Evaluation harness: the paper's §II investigation and §VII evaluation.

* :mod:`repro.experiments.scenarios` — the standard experiment setups
  (per-benchmark diurnal runs with the three low-peak background
  services, concurrency thresholds, compressed day).
* :mod:`repro.experiments.runner` — end-to-end runs of Amoeba (and its
  NoM/NoP variants), pure-IaaS Nameko and pure-serverless OpenWhisk.
* :mod:`repro.experiments.metrics` — derived measurements: normalized
  usage, latency CDFs, peak-load search, discriminant-error analysis.
* :mod:`repro.experiments.figures` — one regenerator per paper table /
  figure (``fig2`` … ``fig16``, ``sec7e``), each returning a structured
  result and a text rendering.
* :mod:`repro.experiments.report` — plain-text table renderer.
* :mod:`repro.experiments.executor` — parallel fan-out of independent
  seeded runs with submission-order (bit-deterministic) merging.
* :mod:`repro.experiments.cache` — the content-addressed run cache the
  executor memoizes finished runs in.
"""

from repro.experiments.cache import RunCache, code_salt, fingerprint
from repro.experiments.executor import (
    RunRequest,
    configure,
    run_many,
    run_systems,
)
from repro.experiments.runner import (
    RunResult,
    ServiceResult,
    run_amoeba,
    run_nameko,
    run_openwhisk,
)
from repro.experiments.scenarios import Scenario, concurrency_threshold, default_scenario

__all__ = [
    "RunCache",
    "RunRequest",
    "RunResult",
    "Scenario",
    "ServiceResult",
    "code_salt",
    "concurrency_threshold",
    "configure",
    "default_scenario",
    "fingerprint",
    "run_amoeba",
    "run_many",
    "run_nameko",
    "run_openwhisk",
    "run_systems",
]
