"""The Amoeba runtime facade (paper §III, Fig. 6).

Wires the three components around a shared serverless node and per-
service IaaS rentals:

* one :class:`~repro.serverless.platform.ServerlessPlatform` — the
  multi-tenant container pool every microservice (and the meters) shares;
* one :class:`~repro.core.monitor.ContentionMonitor` with its meter
  daemons and PCA calibration;
* per managed microservice: a just-enough IaaS rental, a
  :class:`~repro.core.engine.HybridExecutionEngine` and a
  :class:`~repro.core.controller.DeploymentController` with the
  co-tenant QoS guard;
* optional *background services* that always run serverless (the paper's
  ``float``/``dd``/``cloud_stor`` low-peak co-tenants, §VII-A) and
  provide the contention the monitor must see through.

The ablation variants are configuration: ``AmoebaConfig.variant_nom()``
(no PCA) and ``variant_nop()`` (no prewarm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.cluster import CLUSTER_TABLE_II, ContentionConfig, SpotSpec, UsageSample
from repro.cluster.spec import ClusterSpec
from repro.core.config import AmoebaConfig
from repro.core.controller import DeploymentController
from repro.core.engine import DeployMode, HybridExecutionEngine
from repro.core.invariants import InvariantMonitor
from repro.core.meters import expected_platform_overhead
from repro.core.monitor import ContentionMonitor
from repro.core.mu_model import predicted_latency
from repro.sim.queueing import qos_satisfied
from repro.core.surfaces import SurfaceSet, build_surface_set
from repro.faults import FaultInjector, FaultPlan
from repro.iaas import IaaSService, VMFlavor, size_service
from repro.iaas.sizing import RPC_OVERHEAD
from repro.overload import OverloadGovernor, OverloadPolicy
from repro.serverless import ServerlessConfig, ServerlessPlatform
from repro.sim import Environment, RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads import LoadGenerator, MicroserviceSpec, Query, Trace

__all__ = ["AmoebaRuntime", "BackgroundService", "ManagedService"]


@dataclass
class ManagedService:
    """Everything Amoeba holds for one managed microservice."""

    spec: MicroserviceSpec
    trace: Trace
    metrics: ServiceMetrics
    iaas: IaaSService
    engine: HybridExecutionEngine
    controller: DeploymentController
    surfaces: SurfaceSet
    #: None for call-graph interior nodes, whose arrivals come from
    #: upstream completions instead of an open-loop generator
    loadgen: Optional[LoadGenerator]
    overload: Optional[OverloadGovernor] = None


@dataclass
class BackgroundService:
    """A co-tenant that always runs on the serverless platform."""

    spec: MicroserviceSpec
    trace: Trace
    metrics: ServiceMetrics
    surfaces: SurfaceSet
    loadgen: LoadGenerator
    overload: Optional[OverloadGovernor] = None


class AmoebaRuntime:
    """One Amoeba deployment: shared serverless node + managed services."""

    def __init__(
        self,
        seed: int = 0,
        config: Optional[AmoebaConfig] = None,
        cluster: Optional[ClusterSpec] = None,
        serverless_config: Optional[ServerlessConfig] = None,
        contention: Optional[ContentionConfig] = None,
        flavor: Optional[VMFlavor] = None,
        env: Optional[Environment] = None,
        faults: Optional[FaultPlan] = None,
        overload: Optional[OverloadPolicy] = None,
        spot: Optional[SpotSpec] = None,
    ) -> None:
        self.env = env if env is not None else Environment()
        self.rng = RngRegistry(seed=seed)
        self.config = config if config is not None else AmoebaConfig()
        self.cluster = cluster if cluster is not None else CLUSTER_TABLE_II
        self.contention = contention if contention is not None else ContentionConfig()
        self.flavor = flavor if flavor is not None else VMFlavor()
        # a zero-rate plan makes zero draws (the injector's determinism
        # contract), so wiring the injector in is behaviourally inert
        # until a rate is actually raised above zero
        self.faults = FaultInjector(faults, self.rng) if faults is not None else None
        # like the zero fault plan, a disabled policy's governors make
        # every decision a no-op, so wiring them in is behaviourally
        # inert (the check.sh bit-identity gate holds us to that)
        self.overload_policy = overload
        self.serverless = ServerlessPlatform(
            self.env,
            self.rng,
            node=self.cluster.serverless_node,
            config=serverless_config,
            contention=self.contention,
            faults=self.faults,
        )
        self.monitor = ContentionMonitor(
            self.env, self.serverless, self.config, self.rng, faults=self.faults
        )
        self.monitor.start()
        #: back every managed rental with this spot share (None = all
        #: on-demand, the pre-spot behaviour)
        self.spot = spot
        #: always-on kernel invariant monitor (RNG-free, so its periodic
        #: checks leave every latency ledger bit-identical)
        self.invariants = InvariantMonitor(self.env)
        self.services: Dict[str, ManagedService] = {}
        self.background: Dict[str, BackgroundService] = {}

    # -- wiring ------------------------------------------------------------------
    def _build_surfaces(
        self, spec: MicroserviceSpec, load_max: Optional[float] = None
    ) -> SurfaceSet:
        cfg = self.config
        return build_surface_set(
            spec,
            node=self.cluster.serverless_node,
            contention=self.contention,
            cfg=self.serverless.config,
            pressure_max=cfg.surface_pressure_max,
            pressure_points=cfg.surface_pressure_points,
            load_max=load_max,
            load_points=cfg.surface_load_points,
        )

    def _make_governor(self, spec: MicroserviceSpec) -> Optional[OverloadGovernor]:
        """One shared overload governor per microservice (both platforms).

        The admission model's service rates come from the same sources
        the controller's μ reasoning uses: mean exec time plus the
        platform overhead α on serverless (Eq. 6), exec time plus the
        RPC dispatch overhead on IaaS.
        """
        if self.overload_policy is None:
            return None
        alpha = expected_platform_overhead(spec, self.serverless.config)
        return OverloadGovernor(
            self.overload_policy,
            qos_target=spec.qos_target,
            mu_serverless=1.0 / (spec.exec_time + alpha),
            mu_iaas=1.0 / (spec.exec_time + RPC_OVERHEAD),
        )

    def add_service(
        self,
        spec: MicroserviceSpec,
        trace: Trace,
        initial_mode: DeployMode = DeployMode.IAAS,
        guard_enabled: bool = True,
        limit: Optional[int] = None,
        sizing_rate: Optional[float] = None,
        reservoir: Optional[int] = None,
        router: Optional[Callable[[Query], None]] = None,
        generate_load: bool = True,
    ) -> ManagedService:
        """Put one microservice under Amoeba management.

        The IaaS side is sized just-enough for ``trace.peak_rate`` (the
        paper's §III setup: the maintainer supplies a configuration that
        can serve the peak).  The default starting mode is IaaS, as in
        §III step 1.  ``sizing_rate`` overrides the rate the rental is
        sized for — overload scenarios size for the *nominal* peak while
        driving the trace past it, so the excess is genuinely excess.
        ``reservoir`` overrides the latency-reservoir capacity so QoS
        gates stay exact for scenarios expecting more than the default
        20k completions.

        Call-graph wiring: ``router`` replaces ``engine.route`` as the
        load generator's submit target (the graph orchestrator stamps
        deadline budgets there before routing), and
        ``generate_load=False`` skips the generator entirely for
        interior nodes whose arrivals are upstream completions.  With
        both left at their defaults the wiring — and every RNG stream
        draw — is identical to the pre-graph runtime.
        """
        if spec.name in self.services or spec.name in self.background:
            raise ValueError(f"service {spec.name!r} already added")
        if reservoir is not None:
            metrics = ServiceMetrics(spec.name, spec.qos_target, reservoir=reservoir)
        else:
            metrics = ServiceMetrics(spec.name, spec.qos_target)
        sizing = size_service(
            spec,
            sizing_rate if sizing_rate is not None else trace.peak_rate,
            flavor=self.flavor,
            contention=self.contention,
        )
        governor = self._make_governor(spec)
        iaas = IaaSService(
            self.env,
            spec,
            sizing,
            self.rng,
            metrics=metrics,
            contention=self.contention,
            faults=self.faults,
            overload=governor,
            spot=self.spot,
        )
        if initial_mode is DeployMode.IAAS:
            iaas.deploy(instant=True)
        # Amoeba-NoP has no prewarm module, and the prewarm module is also
        # what keeps containers warm for later queries (§V-A) — so the
        # NoP variant cold starts every invocation
        keep_alive = None if self.config.prewarm else 0.0
        self.serverless.register(
            spec, metrics=metrics, limit=limit, keep_alive=keep_alive, overload=governor
        )
        # profile the surfaces out to twice the service's design peak —
        # that is the whole load range the controller will ever query
        surfaces = self._build_surfaces(spec, load_max=2.0 * trace.peak_rate)
        self.monitor.register_service(spec.name, surfaces)
        engine = HybridExecutionEngine(
            self.env,
            spec,
            iaas,
            self.serverless,
            metrics,
            self.config,
            self.rng,
            initial_mode=initial_mode,
            overload=governor,
        )
        guard = self._make_guard(spec.name) if guard_enabled else None
        controller = DeploymentController(
            self.env, spec, engine, self.monitor, self.config, guard=guard
        )
        loadgen = None
        if generate_load:
            submit = router if router is not None else engine.route
            loadgen = LoadGenerator(self.env, spec.name, trace, submit, self.rng)
        managed = ManagedService(
            spec=spec,
            trace=trace,
            metrics=metrics,
            iaas=iaas,
            engine=engine,
            controller=controller,
            surfaces=surfaces,
            loadgen=loadgen,
            overload=governor,
        )
        self.services[spec.name] = managed
        # conservation census: a managed query is in flight on exactly one
        # of the two platforms until it reaches a terminal state
        fs = self.serverless.pool.state(spec.name)
        self.invariants.register(
            spec.name, metrics, lambda: iaas.in_flight + fs.user_in_flight
        )
        return managed

    def add_background(
        self, spec: MicroserviceSpec, trace: Trace, limit: Optional[int] = None
    ) -> BackgroundService:
        """Add an always-serverless co-tenant (contention source)."""
        if spec.name in self.services or spec.name in self.background:
            raise ValueError(f"service {spec.name!r} already added")
        metrics = ServiceMetrics(spec.name, spec.qos_target)
        governor = self._make_governor(spec)
        self.serverless.register(spec, metrics=metrics, limit=limit, overload=governor)
        surfaces = self._build_surfaces(spec, load_max=2.0 * trace.peak_rate)
        self.monitor.register_service(spec.name, surfaces)
        loadgen = LoadGenerator(self.env, spec.name, trace, self.serverless.invoke, self.rng)
        fs = self.serverless.pool.state(spec.name)
        self.invariants.register(spec.name, metrics, lambda: fs.user_in_flight)
        bg = BackgroundService(
            spec=spec,
            trace=trace,
            metrics=metrics,
            surfaces=surfaces,
            loadgen=loadgen,
            overload=governor,
        )
        self.background[spec.name] = bg
        return bg

    # -- the co-tenant QoS guard (paper SIII) --------------------------------------
    def _make_guard(self, name: str) -> Callable[[float, float], bool]:
        def guard(load: float, service_time: float) -> bool:
            return self.switch_in_is_safe(name, load, service_time)

        return guard

    def switch_in_is_safe(self, name: str, load: float, service_time: float) -> bool:
        """Would moving ``name`` in at ``load`` keep every tenant's QoS?

        Adds the candidate's projected pressure to the monitor's current
        measurement, re-predicts each current serverless tenant's μ via
        its own surfaces and calibrated weights, and checks the tenant's
        QoS with the same M/M/N model the discriminant uses — i.e. the
        projected *end-to-end* (queueing included) r-ile latency must
        stay inside each tenant's target (paper §III step 3).
        """
        spec = (
            self.services[name].spec if name in self.services else self.background[name].spec
        )
        node = self.cluster.serverless_node
        busy = load * service_time
        d = spec.demand
        base = self.monitor.pressure()
        projected = (
            base[0] + busy * d.cpu / node.cores,
            base[1] + busy * d.io_mbps / node.disk_mbps,
            base[2] + busy * d.net_mbps / node.net_mbps,
        )
        now = self.env.now
        for tenant_name, tenant_spec, tenant_metrics, surfaces in self._serverless_tenants():
            if tenant_name == name:
                continue
            t_load = tenant_metrics.load.rate(now)
            weights, bias = self.monitor.weights(tenant_name)
            axis_lat = surfaces.axis_latencies(projected, t_load)
            lat = predicted_latency(
                surfaces.solo_latency, axis_lat, weights, surfaces.alpha, bias
            )
            if lat > tenant_spec.qos_target:
                return False
            n_avail = self.serverless.n_max(tenant_name)
            if n_avail < 1 or not qos_satisfied(
                t_load, 1.0 / lat, n_avail, tenant_spec.qos_target, self.config.r_ile
            ):
                return False
        return True

    def _serverless_tenants(self) -> Iterator[Tuple[str, MicroserviceSpec, ServiceMetrics, SurfaceSet]]:
        """(name, spec, metrics, surfaces) of services now on serverless."""
        for bg_name, bg in self.background.items():
            yield bg_name, bg.spec, bg.metrics, bg.surfaces
        for svc_name, svc in self.services.items():
            if svc.engine.mode is DeployMode.SERVERLESS:
                yield svc_name, svc.spec, svc.metrics, svc.surfaces

    # -- execution / results --------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the simulation to time ``until``.

        The invariant monitor's exact-conservation horizon check runs at
        the stop boundary: every arrival must be terminal or still in
        flight, nothing lost, nothing double-counted.
        """
        self.env.run(until=until)
        self.invariants.check_horizon()

    def service_usage(self, name: str) -> UsageSample:
        """Combined vendor-side usage of one managed service (IaaS + serverless)."""
        svc = self.services[name]
        iaas_usage = svc.iaas.ledger.snapshot()
        sls_usage = self.serverless.function_ledger(name).snapshot()
        total = iaas_usage + sls_usage
        if svc.iaas.spot_ledger is not None:
            total = total + svc.iaas.spot_ledger.snapshot()
        return total

    def meter_overhead(self) -> float:
        """Mean fraction of the serverless node the meters consume (§VII-E)."""
        return self.monitor.meter_cpu_overhead()
