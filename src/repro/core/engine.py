"""The hybrid execution engine (paper §V).

Owns one microservice's two deployments and the route between them:

* **Routing** — queries go to whichever platform is active; while on
  IaaS, a small fraction is *shadowed* to the serverless platform as
  canaries (§III step 1) so the monitor keeps receiving serverless-path
  latency feedback.
* **Switch protocol** (§V-B) — on a switch-in, the engine first sends
  the prewarm signal (Eq. 7 sizing), waits for the platform's
  acknowledgement that the containers are warm, *then* flips the route,
  and finally lets the IaaS side drain and release ("the IaaS platform
  releases the resources after all its allocated queries completed").
  On a switch-out it boots the VMs first, keeps routing to serverless
  until they are ready, then flips; the containers idle out under the
  pool's keep-alive.
* **Amoeba-NoP** (§VII-D) — with prewarming disabled the route flips
  immediately and the first wave of queries pays cold starts.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional, Tuple

from repro.core.config import AmoebaConfig
from repro.core.prewarm import prewarm_count
from repro.iaas.service import IaaSService, ServiceState
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import MicroserviceSpec
from repro.workloads.loadgen import Query

__all__ = ["DeployMode", "HybridExecutionEngine"]


class DeployMode(enum.Enum):
    """Which deployment currently serves new queries."""

    IAAS = "iaas"
    SERVERLESS = "serverless"


class HybridExecutionEngine:
    """Router + switch protocol for one microservice."""

    def __init__(
        self,
        env: Environment,
        spec: MicroserviceSpec,
        iaas_service: IaaSService,
        serverless: ServerlessPlatform,
        metrics: ServiceMetrics,
        config: AmoebaConfig,
        rng: RngRegistry,
        initial_mode: DeployMode = DeployMode.IAAS,
    ) -> None:
        self.env = env
        self.spec = spec
        self.iaas = iaas_service
        self.serverless = serverless
        self.metrics = metrics
        self.config = config
        self.rng = rng
        self.mode = initial_mode
        self.switching = False
        self.last_switch_time = -float("inf")
        #: (time, mode) — Fig. 12's deploy-mode timeline
        self.mode_timeline: List[Tuple[float, DeployMode]] = [(env.now, initial_mode)]
        #: (time, target mode, load at decision) — Fig. 12's star markers
        self.switch_events: List[Tuple[float, DeployMode, float]] = []
        self._canary_stream = rng.stream(f"canary/{spec.name}")
        self._canary_ids = 0
        self._drain_event: Optional[Event] = None

    # -- routing ----------------------------------------------------------------
    def route(self, query: Query) -> None:
        """Send one user query to the active deployment."""
        if self.mode is DeployMode.SERVERLESS:
            self.serverless.invoke(query)
            return
        self.iaas.invoke(query)
        # shadow a sample to the serverless platform for feedback
        if self.config.canary_fraction > 0 and (
            self._canary_stream.uniform() < self.config.canary_fraction
        ):
            self._canary_ids += 1
            shadow = Query(
                qid=-self._canary_ids,
                service=query.service,
                t_submit=self.env.now,
                canary=True,
            )
            self.serverless.invoke(shadow)

    # -- switching --------------------------------------------------------------
    def can_switch(self) -> bool:
        """True when a new switch may be requested (dwell + not mid-switch)."""
        return (
            not self.switching
            and (self.env.now - self.last_switch_time) >= self.config.min_dwell
        )

    def request_switch(self, target: DeployMode, load: float) -> bool:
        """Ask for a deploy-mode switch; returns False if refused.

        Refusals: already in ``target``, a switch is in flight, or the
        minimum dwell since the last switch has not elapsed.
        """
        if target is self.mode or not self.can_switch():
            return False
        self.switching = True
        self.switch_events.append((self.env.now, target, load))
        if target is DeployMode.SERVERLESS:
            self.env.process(self._switch_to_serverless(load))
        else:
            self.env.process(self._switch_to_iaas())
        return True

    def _flip(self, target: DeployMode) -> None:
        self.mode = target
        self.mode_timeline.append((self.env.now, target))
        self.last_switch_time = self.env.now
        self.switching = False

    def _switch_to_serverless(self, load: float) -> Iterator[Event]:
        if self.config.prewarm:
            n = prewarm_count(
                load,
                self.spec.qos_target,
                headroom=self.config.prewarm_headroom,
                n_cap=self.serverless.n_max(self.spec.name),
            )
            ack = self.serverless.prewarm(self.spec.name, n)
            yield ack  # S_pw acknowledged: containers are warm
        else:
            yield self.env.timeout(0.0)  # NoP: flip immediately
        self._flip(DeployMode.SERVERLESS)
        # release the IaaS rental once its in-flight queries drain (S_sd)
        if self.iaas.state is ServiceState.RUNNING:
            self._drain_event = self.iaas.undeploy()

    def _switch_to_iaas(self) -> Iterator[Event]:
        # a rapid flip-back can catch the previous rental still draining
        if self.iaas.state is ServiceState.DRAINING and self._drain_event is not None:
            yield self._drain_event
        ready = self.iaas.deploy()
        yield ready  # VMs booted: safe to flip
        self._flip(DeployMode.IAAS)
        # serverless containers idle out via the pool's keep-alive

    # -- observability -------------------------------------------------------------
    def mode_at(self, t: float) -> DeployMode:
        """Deploy mode that was active at time ``t`` (for the timelines)."""
        mode = self.mode_timeline[0][1]
        for ts, m in self.mode_timeline:
            if ts > t:
                break
            mode = m
        return mode

    def serverless_time_fraction(self, t_end: float) -> float:
        """Fraction of [0, t_end] spent in serverless mode."""
        if t_end <= 0:
            return 0.0
        total = 0.0
        timeline = self.mode_timeline
        for i, (ts, m) in enumerate(timeline):
            if ts >= t_end:
                break
            nxt = timeline[i + 1][0] if i + 1 < len(timeline) else t_end
            if m is DeployMode.SERVERLESS:
                total += min(nxt, t_end) - ts
        return total / t_end
