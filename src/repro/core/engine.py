"""The hybrid execution engine (paper §V).

Owns one microservice's two deployments and the route between them:

* **Routing** — queries go to whichever platform is active; while on
  IaaS, a small fraction is *shadowed* to the serverless platform as
  canaries (§III step 1) so the monitor keeps receiving serverless-path
  latency feedback.
* **Switch protocol** (§V-B) — on a switch-in, the engine first sends
  the prewarm signal (Eq. 7 sizing), waits for the platform's
  acknowledgement that the containers are warm, *then* flips the route,
  and finally lets the IaaS side drain and release ("the IaaS platform
  releases the resources after all its allocated queries completed").
  On a switch-out it boots the VMs first, keeps routing to serverless
  until they are ready, then flips; the containers idle out under the
  pool's keep-alive.
* **Amoeba-NoP** (§VII-D) — with prewarming disabled the route flips
  immediately and the first wave of queries pays cold starts.
* **Graceful degradation** — every switch leg runs under a guard that
  cannot leave ``switching`` stuck: the prewarm ack and the VM boot are
  raced against deadlines (a lost ack or a failed boot aborts the
  switch, re-enters dwell, and logs the abort in ``switch_aborts``), a
  stuck drain is force-released by a watchdog, and any exception inside
  a switch process aborts cleanly instead of wedging the engine.
"""

from __future__ import annotations

import enum
from bisect import bisect_right
from typing import Iterator, List, Optional, Tuple

from repro.core.config import AmoebaConfig
from repro.core.prewarm import prewarm_count
from repro.iaas import IaaSService
from repro.iaas.service import ServiceState
from repro.overload import OverloadGovernor
from repro.serverless import ServerlessPlatform
from repro.sim import Environment, Event, RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads import MicroserviceSpec, Query

__all__ = ["DeployMode", "HybridExecutionEngine"]


class DeployMode(enum.Enum):
    """Which deployment currently serves new queries."""

    IAAS = "iaas"
    SERVERLESS = "serverless"


class HybridExecutionEngine:
    """Router + switch protocol for one microservice."""

    def __init__(
        self,
        env: Environment,
        spec: MicroserviceSpec,
        iaas_service: IaaSService,
        serverless: ServerlessPlatform,
        metrics: ServiceMetrics,
        config: AmoebaConfig,
        rng: RngRegistry,
        initial_mode: DeployMode = DeployMode.IAAS,
        overload: Optional[OverloadGovernor] = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self.iaas = iaas_service
        self.serverless = serverless
        self.metrics = metrics
        self.config = config
        self.rng = rng
        self.overload = overload
        self.mode = initial_mode
        self.switching = False
        self.last_switch_time = -float("inf")
        #: (time, mode) — Fig. 12's deploy-mode timeline
        self.mode_timeline: List[Tuple[float, DeployMode]] = [(env.now, initial_mode)]
        #: flip timestamps, parallel to mode_timeline (bisect key)
        self._timeline_times: List[float] = [env.now]
        #: (time, target mode, load at decision) — Fig. 12's star markers
        self.switch_events: List[Tuple[float, DeployMode, float]] = []
        #: (time, target mode, reason) — switches that timed out or died
        self.switch_aborts: List[Tuple[float, DeployMode, str]] = []
        #: drains the watchdog had to force-release
        self.drain_force_releases = 0
        self._canary_stream = rng.stream(f"canary/{spec.name}")
        self._canary_ids = 0
        self._drain_event: Optional[Event] = None
        #: sim time until which flash-crowd surge mode stays armed
        self._surge_until = -float("inf")
        #: emergency switch-ins taken in reaction to a preemption notice
        self.preemption_switches = 0
        # the IaaS platform tells the engine about spot reclamations so
        # it can pin serverless before the capacity actually drops
        iaas_service.on_preemption = self.handle_preemption

    # -- routing ----------------------------------------------------------------
    def route(self, query: Query) -> None:
        """Send one user query to the active deployment."""
        if self.mode is DeployMode.SERVERLESS:
            self.serverless.invoke(query)
            return
        self.iaas.invoke(query)
        # shadow a sample to the serverless platform for feedback
        if self.config.canary_fraction > 0 and (
            self._canary_stream.uniform() < self.config.canary_fraction
        ):
            self._canary_ids += 1
            shadow = Query(
                qid=-self._canary_ids,
                service=query.service,
                t_submit=self.env.now,
                canary=True,
            )
            self.serverless.invoke(shadow)

    # -- switching --------------------------------------------------------------
    def can_switch(self) -> bool:
        """True when a new switch may be requested.

        Requires: not mid-switch, the minimum dwell has elapsed, and the
        service is not in a breaker-forced brownout (an OPEN breaker pins
        the current mode — flapping deployments while already shedding
        only adds switch-protocol latency to a drowning service).
        """
        return (
            not self.switching
            and (self.env.now - self.last_switch_time) >= self.config.min_dwell
            and not self.in_brownout()
        )

    def in_brownout(self) -> bool:
        """True while the overload breaker holds this service browned out."""
        return self.overload is not None and self.overload.brownout(self.env.now)

    def note_surge(self, until: float) -> None:
        """(Re)arm flash-crowd surge mode until sim time ``until``."""
        self._surge_until = max(self._surge_until, until)

    @property
    def in_surge(self) -> bool:
        """True while the controller's flash-crowd window is armed."""
        return self.env.now < self._surge_until

    def handle_preemption(self, notice_s: float) -> None:
        """React to a spot reclamation notice from the IaaS platform.

        If the service is routed to IaaS and the current load fits the
        serverless container budget, take an *emergency* switch-in (dwell
        does not apply — the capacity is about to drop regardless of how
        recently we switched).  Otherwise stay put: the surviving workers
        plus the booting on-demand replacement are the better option for
        a load the container budget cannot hold.
        """
        if self.mode is not DeployMode.IAAS or self.switching or self.in_brownout():
            return
        load = self.metrics.load.rate(self.env.now)
        needed = prewarm_count(
            load, self.spec.qos_target, headroom=self.config.prewarm_headroom
        )
        if needed > self.serverless.n_max(self.spec.name):
            return
        if self.request_switch(DeployMode.SERVERLESS, load, emergency=True):
            self.preemption_switches += 1

    def request_switch(self, target: DeployMode, load: float, emergency: bool = False) -> bool:
        """Ask for a deploy-mode switch; returns False if refused.

        Refusals: already in ``target``, a switch is in flight, or the
        minimum dwell since the last switch has not elapsed.
        ``emergency=True`` (preemption reaction) waives only the dwell —
        an in-flight switch or a brownout still refuses.
        """
        if target is self.mode:
            return False
        if emergency:
            if self.switching or self.in_brownout():
                return False
        elif not self.can_switch():
            return False
        self.switching = True
        self.switch_events.append((self.env.now, target, load))
        if target is DeployMode.SERVERLESS:
            body = self._switch_to_serverless(load)
        else:
            body = self._switch_to_iaas()
        self.env.process(self._guarded(body, target))
        return True

    def _guarded(self, body: Iterator[Event], target: DeployMode) -> Iterator[Event]:
        """Run a switch leg under the no-wedge guarantee.

        Whatever happens inside the body — a failed boot thrown into the
        generator, a bug, a cancelled event — the ``switching`` flag is
        cleared on the way out, so one dead switch can never permanently
        pin the engine.
        """
        try:
            yield from body
        except Exception as exc:
            self._abort_switch(target, f"{type(exc).__name__}: {exc}")
        finally:
            if self.switching:
                self._abort_switch(target, "switch process exited without flipping")

    def _abort_switch(self, target: DeployMode, reason: str) -> None:
        """Roll a failed switch back: clear the flag, re-enter dwell, log."""
        self.switching = False
        self.last_switch_time = self.env.now  # full dwell before retrying
        self.switch_aborts.append((self.env.now, target, reason))
        if self.overload is not None:
            # an aborted leg is weighted breaker evidence: a service that
            # keeps failing to switch under load is headed for a brownout
            self.overload.note_switch_abort(self.env.now)

    def _flip(self, target: DeployMode) -> None:
        self.mode = target
        self.mode_timeline.append((self.env.now, target))
        self._timeline_times.append(self.env.now)
        self.last_switch_time = self.env.now
        self.switching = False

    def _switch_to_serverless(self, load: float) -> Iterator[Event]:
        if self.config.prewarm:
            demand = load
            if self.overload is not None and self.overload.policy.enabled:
                # Eq. 7 sizes for measured load, but under shedding the
                # measured load is the *survivors*; provision for the
                # traffic being dropped too, or the switch-in inherits
                # the same overload that caused the shedding
                demand += self.overload.shed_rate(self.env.now)
            headroom = self.config.prewarm_headroom
            if self.in_surge:
                # flash crowd in progress: widen the Eq. 7 margin so the
                # spike lands on warm containers instead of cold starts
                headroom += self.config.surge_headroom
            n = prewarm_count(
                demand,
                self.spec.qos_target,
                headroom=headroom,
                n_cap=self.serverless.n_max(self.spec.name),
            )
            ack = self.serverless.prewarm(self.spec.name, n)
            # S_pw: wait for the warm acknowledgement, but only up to the
            # deadline — a lost or straggling ack aborts the switch
            # instead of wedging it (the containers, if they did warm,
            # simply idle out under keep-alive)
            deadline = self.env.timeout(self.config.switch_ack_timeout)
            yield self.env.any_of([ack, deadline])
            if not ack.processed:
                self._abort_switch(DeployMode.SERVERLESS, "prewarm ack deadline")
                return
            if not deadline.processed:
                deadline.cancel()
        else:
            yield self.env.timeout(0.0)  # NoP: flip immediately
        self._flip(DeployMode.SERVERLESS)
        # release the IaaS rental once its in-flight queries drain (S_sd)
        if self.iaas.state is ServiceState.RUNNING:
            self._drain_event = self.iaas.undeploy()

    def _switch_to_iaas(self) -> Iterator[Event]:
        # a rapid flip-back can catch the previous rental still draining;
        # a watchdog bounds how long the stuck drain can hold the switch
        if self.iaas.state is ServiceState.DRAINING and self._drain_event is not None:
            drained = self._drain_event
            watchdog = self.env.timeout(self.config.drain_timeout)
            yield self.env.any_of([drained, watchdog])
            if not drained.processed:
                self.drain_force_releases += 1
                self.iaas.force_release()
            elif not watchdog.processed:
                watchdog.cancel()
            self._drain_event = None
        if self.iaas.state is ServiceState.RUNNING:
            # an earlier aborted switch-out already paid for this boot
            self._flip(DeployMode.IAAS)
            return
        if self.iaas.state is ServiceState.BOOTING and self.iaas.boot_ready is not None:
            ready = self.iaas.boot_ready  # re-join an in-flight boot
        else:
            ready = self.iaas.deploy()
        # wait for the boot up to the deadline; a failed boot (ready
        # fails with VMBootFailed) is thrown into this generator and
        # handled by the guard
        deadline = self.env.timeout(self.config.switch_boot_timeout)
        yield self.env.any_of([ready, deadline])
        if not ready.processed:
            # the boot straggled past the deadline: abort now, and leave
            # a reaper behind to undeploy the rental if the boot lands
            # after nobody wants it anymore
            self.env.process(self._boot_reaper(ready))
            self._abort_switch(DeployMode.IAAS, "vm boot deadline")
            return
        if not deadline.processed:
            deadline.cancel()
        self._flip(DeployMode.IAAS)
        # serverless containers idle out via the pool's keep-alive

    def _boot_reaper(self, ready: Event) -> Iterator[Event]:
        """Clean up after an abandoned boot wait.

        If the boot eventually succeeds while the service is still routed
        to serverless (and no new switch is in flight to claim the VMs),
        the rental would bill forever unused — undeploy it.  If the boot
        fails, swallow the failure (the service already rolled itself
        back to STOPPED).
        """
        try:
            yield ready
        except Exception:
            return
        if self.mode is DeployMode.IAAS or self.switching:
            return
        if self.iaas.state is ServiceState.RUNNING:
            self._drain_event = self.iaas.undeploy()

    # -- observability -------------------------------------------------------------
    def mode_at(self, t: float) -> DeployMode:
        """Deploy mode that was active at time ``t`` (for the timelines)."""
        idx = bisect_right(self._timeline_times, t) - 1
        return self.mode_timeline[max(idx, 0)][1]

    def serverless_time_fraction(self, t_end: float) -> float:
        """Fraction of [0, t_end] spent in serverless mode."""
        if t_end <= 0:
            return 0.0
        total = 0.0
        timeline = self.mode_timeline
        for i, (ts, m) in enumerate(timeline):
            if ts >= t_end:
                break
            nxt = timeline[i + 1][0] if i + 1 < len(timeline) else t_end
            if m is DeployMode.SERVERLESS:
                total += min(nxt, t_end) - ts
        return total / t_end
