"""Per-microservice latency surfaces L(P, V_u) (paper §IV-B step 1, Fig. 9).

For each resource axis, a surface maps *(platform pressure on that axis,
the microservice's own load)* to the microservice's expected per-query
**service latency** — contended execution time, excluding queueing and
platform overheads (queueing is the M/M/N model's job; overheads are
Eq. 6's α).  The own-load axis matters because a service at load V keeps
``V·s`` containers busy (Little's law), and those containers pressure
the platform too — a self-interference fixed point that
:func:`service_time_fixed_point` resolves.

As with the meter profiles, surfaces can be built analytically (instant,
runtime default) or by measurement (mini-simulation per grid point; the
Fig. 9 bench uses it, and a test checks the two agree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np
from numpy.typing import ArrayLike

from repro.cluster import ContentionConfig, NodeSpec
from repro.core.meters import expected_platform_overhead
from repro.serverless import ServerlessConfig
from repro.workloads import MicroserviceSpec

__all__ = [
    "LatencySurface",
    "SurfaceSet",
    "build_surface_set",
    "measured_surface",
    "service_time_fixed_point",
]


def service_time_fixed_point(
    spec: MicroserviceSpec,
    external: Tuple[float, float, float],
    load: float,
    capacities: Tuple[float, float, float],
    contention: ContentionConfig,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> float:
    """Self-consistent contended service time at ``load`` queries/s.

    Solves ``s = exec · slowdown(sens, external + own(s))`` where
    ``own(s)`` is the pressure of the service's own ``load·s`` concurrent
    executions.  Damped iteration; the pressure cap in the contention
    config bounds the map, so it always converges.
    """
    if load < 0:
        raise ValueError(f"load must be >= 0, got {load}")
    d = spec.demand
    per_query = (d.cpu / capacities[0], d.io_mbps / capacities[1], d.net_mbps / capacities[2])
    s = spec.exec_time
    for _ in range(max_iter):
        busy = load * s
        p = (
            external[0] + busy * per_query[0],
            external[1] + busy * per_query[1],
            external[2] + busy * per_query[2],
        )
        s_new = spec.exec_time * contention.slowdown(spec.sensitivity, p)
        if abs(s_new - s) < tol * spec.exec_time:
            return s_new
        s = 0.5 * (s + s_new)
    return s


@dataclass(frozen=True)
class LatencySurface:
    """One Fig. 9 panel: service latency over (axis pressure, own load)."""

    service: str
    axis: int
    pressures: np.ndarray
    loads: np.ndarray
    values: np.ndarray  # shape (len(pressures), len(loads))

    def __post_init__(self) -> None:
        p = np.asarray(self.pressures, dtype=float)
        v = np.asarray(self.loads, dtype=float)
        z = np.asarray(self.values, dtype=float)
        if p.ndim != 1 or v.ndim != 1 or z.shape != (p.size, v.size):
            raise ValueError("surface dimensions are inconsistent")
        if np.any(np.diff(p) <= 0) or np.any(np.diff(v) <= 0):
            raise ValueError("surface grids must be strictly increasing")
        if np.any(z <= 0):
            raise ValueError("surface latencies must be positive")
        object.__setattr__(self, "pressures", p)
        object.__setattr__(self, "loads", v)
        object.__setattr__(self, "values", z)

    def predict(self, pressure: float, load: float) -> float:
        """Bilinear interpolation, clamped to the profiled grid."""
        p = float(np.clip(pressure, self.pressures[0], self.pressures[-1]))
        v = float(np.clip(load, self.loads[0], self.loads[-1]))
        i = int(np.searchsorted(self.pressures, p, side="right")) - 1
        j = int(np.searchsorted(self.loads, v, side="right")) - 1
        i = min(max(i, 0), self.pressures.size - 2)
        j = min(max(j, 0), self.loads.size - 2)
        p0, p1 = self.pressures[i], self.pressures[i + 1]
        v0, v1 = self.loads[j], self.loads[j + 1]
        fp = (p - p0) / (p1 - p0)
        fv = (v - v0) / (v1 - v0)
        z = self.values
        return float(
            z[i, j] * (1 - fp) * (1 - fv)
            + z[i + 1, j] * fp * (1 - fv)
            + z[i, j + 1] * (1 - fp) * fv
            + z[i + 1, j + 1] * fp * fv
        )


@dataclass(frozen=True)
class SurfaceSet:
    """All three surfaces of one microservice plus its Eq. 6 constants."""

    service: str
    surfaces: Tuple[LatencySurface, LatencySurface, LatencySurface]
    #: L₀: solo-run service latency (single uncontended query)
    solo_latency: float
    #: α: mean per-query platform overhead
    alpha: float

    def __post_init__(self) -> None:
        if len(self.surfaces) != 3:
            raise ValueError("need exactly three surfaces (cpu, io, net)")
        for axis, s in enumerate(self.surfaces):
            if s.axis != axis:
                raise ValueError(f"surface at position {axis} claims axis {s.axis}")
        if self.solo_latency <= 0 or self.alpha < 0:
            raise ValueError("solo_latency must be positive and alpha >= 0")

    def axis_latencies(self, pressures: Tuple[float, float, float], load: float) -> np.ndarray:
        """(L₁, L₂, L₃): predicted service latency per contended axis."""
        return np.array(
            [self.surfaces[i].predict(pressures[i], load) for i in range(3)], dtype=float
        )


def build_surface_set(
    spec: MicroserviceSpec,
    node: Optional[NodeSpec] = None,
    contention: Optional[ContentionConfig] = None,
    cfg: Optional[ServerlessConfig] = None,
    pressure_max: float = 1.6,
    pressure_points: int = 9,
    load_max: Optional[float] = None,
    load_points: int = 8,
) -> SurfaceSet:
    """Analytic surfaces over a (pressure × load) grid (runtime default).

    ``load_max`` defaults to the load that would saturate the service's
    most-demanded resource axis on its own.
    """
    node = node if node is not None else NodeSpec(name="serverless")
    contention = contention if contention is not None else ContentionConfig()
    cfg = cfg if cfg is not None else ServerlessConfig()
    capacities = (node.cores, node.disk_mbps, node.net_mbps)
    if load_max is None:
        d = spec.demand
        per_query = max(
            d.cpu / capacities[0], d.io_mbps / capacities[1], d.net_mbps / capacities[2], 1e-9
        )
        load_max = 1.0 / (per_query * spec.exec_time)
    p_grid = np.linspace(0.0, pressure_max, pressure_points)
    # quadratic spacing: dense where controllers actually operate (low
    # loads), sparse toward self-saturation, so bilinear interpolation
    # does not overshoot on the convex surface
    v_grid = load_max * (np.linspace(0.0, 1.0, load_points) ** 2)

    surfaces = []
    for axis in range(3):
        z = np.empty((p_grid.size, v_grid.size))
        for i, p in enumerate(p_grid):
            ext = [0.0, 0.0, 0.0]
            ext[axis] = float(p)
            for j, v in enumerate(v_grid):
                z[i, j] = service_time_fixed_point(
                    spec, (ext[0], ext[1], ext[2]), float(v), capacities, contention
                )
        surfaces.append(
            LatencySurface(service=spec.name, axis=axis, pressures=p_grid, loads=v_grid, values=z)
        )
    return SurfaceSet(
        service=spec.name,
        surfaces=(surfaces[0], surfaces[1], surfaces[2]),
        solo_latency=spec.exec_time,
        alpha=expected_platform_overhead(spec, cfg),
    )


def measured_surface(
    spec: MicroserviceSpec,
    axis: int,
    pressures: "ArrayLike",
    loads: "ArrayLike",
    node: Optional[NodeSpec] = None,
    contention: Optional[ContentionConfig] = None,
    cfg: Optional[ServerlessConfig] = None,
    duration: float = 120.0,
    seed: int = 11,
) -> LatencySurface:
    """One surface by mini-simulation (paper's co-location profiling).

    For each (pressure, load) cell, a fresh platform runs the service at
    Poisson ``load`` with a standing background demand injected on
    ``axis``; the cell value is the mean *execution-stage* latency (the
    pool's ``exec`` breakdown), matching the analytic surfaces'
    exclusion of queueing and overheads.
    """
    from repro.serverless.platform import ServerlessPlatform
    from repro.sim.environment import Environment
    from repro.sim.events import Event
    from repro.sim.rng import RngRegistry
    from repro.telemetry import ServiceMetrics
    from repro.workloads.loadgen import LoadGenerator, Query
    from repro.workloads.traces import ConstantTrace

    node = node if node is not None else NodeSpec(name="profiling")
    contention = contention if contention is not None else ContentionConfig()
    cfg = cfg if cfg is not None else ServerlessConfig()
    capacities = (node.cores, node.disk_mbps, node.net_mbps)
    p_grid = np.asarray(pressures, dtype=float)
    v_grid = np.asarray(loads, dtype=float)
    from repro.cluster.resource_model import DemandVector

    z = np.empty((p_grid.size, v_grid.size))
    for i, p in enumerate(p_grid):
        for j, v in enumerate(v_grid):
            env = Environment()
            rng = RngRegistry(seed=seed + 101 * i + j)
            platform = ServerlessPlatform(env, rng, node=node, config=cfg, contention=contention)
            metrics = ServiceMetrics(spec.name, spec.qos_target)
            platform.register(spec, metrics=metrics)
            background = DemandVector(
                cpu=capacities[0] * p if axis == 0 else 0.0,
                io_mbps=capacities[1] * p if axis == 1 else 0.0,
                net_mbps=capacities[2] * p if axis == 2 else 0.0,
            )
            platform.machine.inject_background(background)
            exec_times: list[float] = []

            def sink(q: Query, exec_times: list[float] = exec_times) -> None:
                pass

            if v > 0:
                collected: list[Query] = []

                def submit(q: Query, platform: ServerlessPlatform = platform) -> None:
                    platform.invoke(q)

                LoadGenerator(env, spec.name, ConstantTrace(float(v)), submit, rng)
                env.run(until=duration)
                mean_exec = metrics.breakdown_sums["exec"] / max(metrics.completed, 1)
            else:
                # a few solo queries
                def solo(
                    env: Environment = env, platform: ServerlessPlatform = platform
                ) -> Iterator[Event]:
                    for k in range(10):
                        q = Query(qid=k, service=spec.name, t_submit=env.now)
                        platform.invoke(q)
                        yield env.timeout(2.0)

                env.process(solo())
                env.run(until=40.0)
                mean_exec = metrics.breakdown_sums["exec"] / max(metrics.completed, 1)
            z[i, j] = max(mean_exec, 1e-6)
    # iron sampling noise into monotone-in-pressure curves
    z = np.maximum.accumulate(z, axis=0)
    return LatencySurface(service=spec.name, axis=axis, pressures=p_grid, loads=v_grid, values=z)
