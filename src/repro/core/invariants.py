"""Always-on kernel invariant monitor.

Fault-injection features (crashes, preemptions, switch aborts) all
redistribute queries between terminal ledgers; a bookkeeping slip shows
up as queries silently vanishing or being double-counted, which no
single test notices because every figure still renders.  The monitor
closes that hole: it rides along every run, asserting conservation and
liveness at a fixed cadence, and raises a deterministic
:class:`InvariantViolation` the moment the books stop balancing.

The monitor is RNG-free and touches no query state, so its periodic
events shift kernel sequence numbers uniformly — bit-identity of every
latency ledger is preserved (see the zero-preemption identity gate in
``scripts/check.sh``).

Checked invariants, per registered service:

* **conservation** — ``completed + failed <= arrivals`` at every check,
  and exact equality ``arrivals == completed + failed + census()`` at
  the horizon (:meth:`InvariantMonitor.check_horizon`), where
  ``census()`` counts queries currently in flight on either platform;
* **clock** — simulation time never runs backwards between checks;
* **census** — the in-flight census is never negative;
* **liveness** — a service with in-flight work must make terminal
  progress within ``wedge_window`` seconds (no-wedge: a stuck drain or
  a lost completion callback surfaces as a violation instead of an
  eternally-running simulation that quietly stopped serving).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.sim import Environment, Event
from repro.telemetry import ServiceMetrics

__all__ = ["InvariantMonitor", "InvariantViolation"]


class InvariantViolation(RuntimeError):
    """A kernel invariant failed; carries which one and for which service."""

    def __init__(self, message: str, invariant: str = "", service: str = "") -> None:
        super().__init__(message)
        self.invariant = invariant
        self.service = service

    def __reduce__(self) -> Tuple[type, Tuple[str, str, str]]:
        # survive pickling across the process-pool boundary with the
        # structured fields intact (default Exception reduce drops kwargs)
        return (type(self), (self.args[0], self.invariant, self.service))


class _Watch:
    """Per-service monitor state."""

    __slots__ = ("metrics", "census", "last_terminals", "stall_since")

    def __init__(self, metrics: ServiceMetrics, census: Callable[[], int]) -> None:
        self.metrics = metrics
        self.census = census
        self.last_terminals = 0
        self.stall_since: Optional[float] = None


class InvariantMonitor:
    """Periodic conservation/clock/liveness checks over registered services."""

    def __init__(
        self,
        env: Environment,
        check_interval: float = 60.0,
        wedge_window: float = 600.0,
    ) -> None:
        if check_interval <= 0:
            raise ValueError(f"check_interval must be positive, got {check_interval}")
        if wedge_window < check_interval:
            raise ValueError("wedge_window must cover at least one check interval")
        self.env = env
        self.check_interval = float(check_interval)
        self.wedge_window = float(wedge_window)
        self._watches: Dict[str, _Watch] = {}
        self._last_now = env.now
        #: checks performed (observability: proves the monitor actually ran)
        self.checks = 0
        self._proc = env.process(self._run())

    def register(self, name: str, metrics: ServiceMetrics, census: Callable[[], int]) -> None:
        """Watch one service; ``census()`` returns its current in-flight count."""
        if name in self._watches:
            raise ValueError(f"service {name!r} already registered")
        self._watches[name] = _Watch(metrics, census)

    # -- the check loop ----------------------------------------------------------
    def _run(self) -> Iterator[Event]:
        while True:
            yield self.env.timeout(self.check_interval)
            self.check_now()

    def check_now(self) -> None:
        """Run every invariant once at the current event boundary."""
        now = self.env.now
        if now < self._last_now:
            raise InvariantViolation(
                f"simulation clock ran backwards: {self._last_now} -> {now}",
                invariant="clock",
            )
        self._last_now = now
        self.checks += 1
        for name, watch in self._watches.items():
            m = watch.metrics
            terminals = m.completed + m.failed
            arrivals = m.load.total
            if terminals > arrivals:
                raise InvariantViolation(
                    f"{name}: {terminals} terminal queries exceed {arrivals} arrivals",
                    invariant="conservation",
                    service=name,
                )
            census = watch.census()
            if census < 0:
                raise InvariantViolation(
                    f"{name}: in-flight census is negative ({census})",
                    invariant="census",
                    service=name,
                )
            # liveness: in-flight work with zero terminal progress for a
            # whole wedge window means something lost its completion path
            if census > 0 and terminals == watch.last_terminals:
                if watch.stall_since is None:
                    watch.stall_since = now
                elif now - watch.stall_since > self.wedge_window:
                    raise InvariantViolation(
                        f"{name}: {census} queries in flight with no terminal "
                        f"progress for {now - watch.stall_since:.0f}s",
                        invariant="liveness",
                        service=name,
                    )
            else:
                watch.stall_since = None
            watch.last_terminals = terminals

    def check_horizon(self) -> None:
        """Exact conservation at the end of a run.

        Valid at any event boundary: every arrival is either terminal or
        still in flight, with nothing lost and nothing double-counted.
        """
        self.check_now()
        for name, watch in self._watches.items():
            m = watch.metrics
            census = watch.census()
            expected = m.load.total - (m.completed + m.failed)
            if census != expected:
                raise InvariantViolation(
                    f"{name}: conservation broken at horizon — "
                    f"{m.load.total} arrivals, {m.completed} completed, "
                    f"{m.failed} failed, census {census} (expected {expected})",
                    invariant="conservation",
                    service=name,
                )
