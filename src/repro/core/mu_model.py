"""Eq. 6: contention-corrected per-container processing capacity μ.

The controller predicts the per-query latency a microservice would see on
the serverless platform as

    L_pred = L₀ + Σᵢ wᵢ·max(Lᵢ − L₀, 0) + α + b

where L₀ is the solo-run service latency, Lᵢ the surface-predicted
service latency under the current pressure on axis *i* (each Lᵢ already
contains the service's own-load self-interference), α the mean platform
overhead, and (w, b) the calibration the multi-resource contention
monitor maintains.  Then μ = 1 / L_pred, which feeds the M/M/N
discriminant (Eq. 5).  This is Eq. 6 in the normalized form the paper's
own example uses (weights scale each axis's *degradation*; the paper's
``Σ wᵢ·Lᵢ/L₀`` with Σwᵢ = 1 is the same expression re-arranged).

Two calibration regimes:

* **Amoeba**: (w, b) fitted online by the monitor's PCA regression.
* **Amoeba-NoM** (§VII-C): no monitor — the controller "pessimistically
  assumes that the QoS degradations of a query due to the contention on
  each of the shared resources are accumulated", i.e. w = (1, 1, 1),
  b = 0, forever.  Because each Lᵢ independently includes the own-load
  degradation, the plain sum over-counts it (and the cross-resource
  coupling), which is exactly why NoM switches to serverless late and
  burns more resources (Fig. 14) with larger discriminant error (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from numpy.typing import ArrayLike

__all__ = ["MuEstimate", "NOM_WEIGHTS", "predicted_latency", "mu_value"]

#: the Amoeba-NoM pessimistic-accumulation weights
NOM_WEIGHTS: Tuple[float, float, float] = (1.0, 1.0, 1.0)


@dataclass(frozen=True)
class MuEstimate:
    """One μ computation with its inputs, for logging and Fig. 15."""

    service: str
    predicted_latency: float
    mu: float
    weights: Tuple[float, float, float]
    bias: float
    axis_latencies: Tuple[float, float, float]
    solo_latency: float
    alpha: float


def predicted_latency(
    solo_latency: float,
    axis_latencies: "ArrayLike",
    weights: "ArrayLike",
    alpha: float,
    bias: float = 0.0,
) -> float:
    """Eq. 6 numerator: predicted per-query serverless latency.

    The result is floored at ``solo_latency + alpha`` — no amount of
    calibration may predict a latency below the uncontended one, which
    keeps a badly-fitted regression from producing an over-optimistic μ.
    """
    if solo_latency <= 0:
        raise ValueError(f"solo_latency must be positive, got {solo_latency}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    L = np.asarray(axis_latencies, dtype=float)
    w = np.asarray(weights, dtype=float)
    if L.shape != (3,) or w.shape != (3,):
        raise ValueError("axis_latencies and weights must each have 3 entries")
    degradation = float(np.dot(w, np.maximum(L - solo_latency, 0.0)))
    return max(solo_latency + degradation + alpha + bias, solo_latency + alpha)


def mu_value(
    service: str,
    solo_latency: float,
    axis_latencies: "ArrayLike",
    weights: "ArrayLike",
    alpha: float,
    bias: float = 0.0,
) -> MuEstimate:
    """μ = 1 / L_pred, packaged with its inputs."""
    lat = predicted_latency(solo_latency, axis_latencies, weights, alpha, bias)
    L = tuple(float(x) for x in np.asarray(axis_latencies, dtype=float))
    w = tuple(float(x) for x in np.asarray(weights, dtype=float))
    return MuEstimate(
        service=service,
        predicted_latency=lat,
        mu=1.0 / lat,
        weights=w,  # type: ignore[arg-type]
        bias=float(bias),
        axis_latencies=L,  # type: ignore[arg-type]
        solo_latency=float(solo_latency),
        alpha=float(alpha),
    )
