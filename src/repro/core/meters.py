"""Contention meters and their latency-vs-pressure curves (paper §IV-B, Fig. 8).

A *contention meter* is a deliberately tiny function whose latency is a
clean, monotone function of the pressure on exactly one shared resource:
the CPU meter is a short arithmetic loop (sensitive only to core /
memory-bandwidth pressure), the IO meter a small direct-write, the
network meter a small transfer.  The monitor:

1. **Profiles** each meter offline: latency as a function of injected
   pressure on its axis (Fig. 8's curves) — :func:`profile_meter`.
2. **Measures** online: runs the meters at 1 QPS on the production
   platform and *inverts* the profile to turn an observed meter latency
   into a pressure estimate — :meth:`MeterProfile.invert`.

Profiles can be built two ways.  The *measured* builder runs a real
mini-simulation per grid point (a fresh platform with background demand
injected on the axis) — this is the honest analogue of the paper's
methodology and is used by the Fig. 8 bench.  The *analytic* builder
evaluates the same platform constants in closed form; the two agree
within sampling noise (a test asserts it) and the analytic one is the
runtime default because it is instant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from repro.cluster import ContentionConfig, DemandVector, NodeSpec, SensitivityVector
from repro.serverless import ServerlessConfig
from repro.sim import Event
from repro.workloads import MicroserviceSpec

__all__ = [
    "METER_SPECS",
    "MeterProfile",
    "analytic_meter_latency",
    "expected_platform_overhead",
    "meter_axis_index",
    "profile_meter",
    "profile_meter_measured",
]

#: canonical axis order, matching MachineModel.pressures()
AXES = ("cpu", "io", "net")


def _meter(name: str, exec_time: float, demand: DemandVector, sens: SensitivityVector) -> MicroserviceSpec:
    return MicroserviceSpec(
        name=name,
        exec_time=exec_time,
        # meters are deliberately deterministic kernels: their run-to-run
        # jitter must be far below the contention signal they measure
        exec_sigma=0.02,
        demand=demand,
        sensitivity=sens,
        qos_target=5.0,  # meters have no QoS of their own
        code_mb=5.0,
        memory_mb=256.0,
        result_mb=0.01,
    )


#: the three delicately-designed meter functions (paper §IV-B).  The
#: 100 ms kernels are long enough that contention-induced stretching
#: dominates front-end jitter (a shorter kernel makes the curve
#: inversion noise-dominated at low pressure) while still costing ~1% of
#: a core's time at the 1 QPS measurement rate.
METER_SPECS: Dict[str, MicroserviceSpec] = {
    "meter_cpu": _meter(
        "meter_cpu",
        exec_time=0.100,
        demand=DemandVector(cpu=0.5, memory_mb=256.0),
        sens=SensitivityVector(cpu=1.0, io=0.0, net=0.0),
    ),
    "meter_io": _meter(
        "meter_io",
        exec_time=0.100,
        demand=DemandVector(cpu=0.05, memory_mb=256.0, io_mbps=80.0),
        sens=SensitivityVector(cpu=0.0, io=1.0, net=0.0),
    ),
    "meter_net": _meter(
        "meter_net",
        exec_time=0.100,
        demand=DemandVector(cpu=0.05, memory_mb=256.0, net_mbps=60.0),
        sens=SensitivityVector(cpu=0.0, io=0.0, net=1.0),
    ),
}

#: meter name per axis index
AXIS_METERS = ("meter_cpu", "meter_io", "meter_net")


def meter_axis_index(name: str) -> int:
    """Axis (0=cpu, 1=io, 2=net) a meter name measures."""
    try:
        return AXIS_METERS.index(name)
    except ValueError:
        raise KeyError(f"{name!r} is not a contention meter") from None


def expected_platform_overhead(spec: MicroserviceSpec, cfg: ServerlessConfig) -> float:
    """Mean per-query serverless overhead α for ``spec`` (Eq. 6's α).

    Processing (lognormal mean), warm code loading, and result posting —
    the stages of Fig. 4 that are not execution or queueing.
    """
    proc = cfg.proc_overhead_median * math.exp(0.5 * cfg.proc_overhead_sigma**2)
    load = spec.code_mb / cfg.warm_load_mbps
    post = cfg.post_overhead_base + spec.result_mb / cfg.post_mbps
    return proc + load + post


def analytic_meter_latency(
    meter: MicroserviceSpec,
    pressure: float,
    axis: int,
    contention: ContentionConfig,
    cfg: ServerlessConfig,
) -> float:
    """Closed-form expected meter latency at ``pressure`` on ``axis``."""
    if not 0 <= axis < 3:
        raise ValueError(f"axis must be 0..2, got {axis}")
    p = [0.0, 0.0, 0.0]
    p[axis] = pressure
    slow = contention.slowdown(meter.sensitivity, (p[0], p[1], p[2]))
    return expected_platform_overhead(meter, cfg) + meter.exec_time * slow


@dataclass(frozen=True)
class MeterProfile:
    """A monotone latency-vs-pressure curve for one meter (one Fig. 8 panel)."""

    meter: str
    axis: int
    pressures: np.ndarray
    latencies: np.ndarray

    def __post_init__(self) -> None:
        p = np.asarray(self.pressures, dtype=float)
        l = np.asarray(self.latencies, dtype=float)
        if p.ndim != 1 or p.shape != l.shape or p.size < 2:
            raise ValueError("profile needs matching 1-D grids of length >= 2")
        if np.any(np.diff(p) <= 0):
            raise ValueError("pressure grid must be strictly increasing")
        if np.any(np.diff(l) < 0):
            raise ValueError("latency curve must be non-decreasing in pressure")
        object.__setattr__(self, "pressures", p)
        object.__setattr__(self, "latencies", l)

    def latency(self, pressure: float) -> float:
        """Interpolated meter latency at ``pressure`` (clamped to the grid)."""
        return float(np.interp(pressure, self.pressures, self.latencies))

    def invert(self, latency: float) -> float:
        """Pressure whose profiled latency is ``latency`` (the measurement step).

        Clamped to the profiled range; flat stretches resolve to their
        left edge (lowest pressure consistent with the observation).
        """
        lats, prs = self.latencies, self.pressures
        if latency <= lats[0]:
            return float(prs[0])
        if latency >= lats[-1]:
            return float(prs[-1])
        idx = int(np.searchsorted(lats, latency, side="left"))
        l0, l1 = lats[idx - 1], lats[idx]
        if l1 == l0:
            return float(prs[idx - 1])
        frac = (latency - l0) / (l1 - l0)
        return float(prs[idx - 1] + frac * (prs[idx] - prs[idx - 1]))


def profile_meter(
    meter_name: str,
    contention: Optional[ContentionConfig] = None,
    cfg: Optional[ServerlessConfig] = None,
    pressure_max: float = 1.6,
    points: int = 17,
) -> MeterProfile:
    """Analytic Fig. 8 curve for one meter (the runtime default)."""
    contention = contention if contention is not None else ContentionConfig()
    cfg = cfg if cfg is not None else ServerlessConfig()
    meter = METER_SPECS[meter_name]
    axis = meter_axis_index(meter_name)
    grid = np.linspace(0.0, pressure_max, points)
    lats = np.array(
        [analytic_meter_latency(meter, float(p), axis, contention, cfg) for p in grid]
    )
    return MeterProfile(meter=meter_name, axis=axis, pressures=grid, latencies=lats)


def profile_meter_measured(
    meter_name: str,
    contention: Optional[ContentionConfig] = None,
    cfg: Optional[ServerlessConfig] = None,
    node: Optional[NodeSpec] = None,
    pressure_max: float = 1.6,
    points: int = 9,
    queries_per_point: int = 60,
    seed: int = 7,
) -> MeterProfile:
    """Fig. 8 curve by mini-simulation: the paper's profiling methodology.

    For each grid pressure, a fresh serverless platform is stood up, a
    standing background demand is injected on the meter's axis, and the
    meter is invoked ``queries_per_point`` times at 1 QPS; the mean
    end-to-end latency (queueing excluded — the meter never queues at
    1 QPS) is the curve sample.  Monotonicity is enforced by a running
    maximum, which irons out sampling noise.
    """
    # local imports: keep the profiling path's heavier deps out of the
    # runtime import graph
    from repro.serverless.platform import ServerlessPlatform
    from repro.sim.environment import Environment
    from repro.sim.rng import RngRegistry
    from repro.telemetry import ServiceMetrics

    contention = contention if contention is not None else ContentionConfig()
    cfg = cfg if cfg is not None else ServerlessConfig()
    node = node if node is not None else NodeSpec(name="profiling")
    meter = METER_SPECS[meter_name]
    axis = meter_axis_index(meter_name)
    capacities = (node.cores, node.disk_mbps, node.net_mbps)

    grid = np.linspace(0.0, pressure_max, points)
    lats = []
    for i, p in enumerate(grid):
        env = Environment()
        rng = RngRegistry(seed=seed + i)
        platform = ServerlessPlatform(env, rng, node=node, config=cfg, contention=contention)
        metrics = ServiceMetrics(meter.name, meter.qos_target)
        platform.register(meter, metrics=metrics)
        background = DemandVector(
            cpu=capacities[0] * p if axis == 0 else 0.0,
            io_mbps=capacities[1] * p if axis == 1 else 0.0,
            net_mbps=capacities[2] * p if axis == 2 else 0.0,
        )
        remove = platform.machine.inject_background(background)

        def driver(
            env: Environment = env,
            platform: ServerlessPlatform = platform,
            meter: MicroserviceSpec = meter,
        ) -> Iterator[Event]:
            from repro.workloads.loadgen import Query

            for k in range(queries_per_point):
                q = Query(qid=k, service=meter.name, t_submit=env.now)
                platform.invoke(q)
                yield env.timeout(1.0)

        env.process(driver())
        env.run(until=queries_per_point + 10.0)
        remove()
        # drop the first few samples: they pay the cold start
        vals = np.sort(metrics.latencies.values())
        if vals.size == 0:
            raise RuntimeError(f"profiling produced no samples at pressure {p}")
        trimmed = vals[: max(1, int(0.9 * vals.size))]  # trim cold-start tail
        lats.append(float(np.mean(trimmed)))
    lats = np.maximum.accumulate(np.asarray(lats))
    return MeterProfile(meter=meter_name, axis=axis, pressures=grid, latencies=lats)
