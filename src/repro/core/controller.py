"""The contention-aware deployment controller (paper §IV).

Every sample period T (Eq. 8) the controller, for its microservice:

1. reads the current load λ (trailing-window arrival rate),
2. feeds the monitor the latest serverless-path latency observation
   (canaries while on IaaS, real queries while on serverless),
3. computes μ from Eq. 6 using the monitor's pressure vector, the
   service's latency surfaces and the calibrated weights,
4. evaluates the discriminant: the largest admissible arrival rate
   λ(μ) for the available container budget n_max (Eq. 5),
5. decides: switch to serverless when λ < in_margin·λ(μ) *and* the
   co-tenant guard approves (§III: a switch-in must not push any
   current serverless tenant over its QoS); switch back to IaaS when
   λ > out_margin·λ(μ).

Every evaluation is logged — the Fig. 12 timeline and the Fig. 15
discriminant-error analysis read the log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.config import AmoebaConfig
from repro.core.engine import DeployMode, HybridExecutionEngine
from repro.core.monitor import ContentionMonitor, sample_period
from repro.core.mu_model import MuEstimate, mu_value
from repro.sim.queueing import max_arrival_rate, max_arrival_rate_gg
from repro.sim import Environment, Event
from repro.workloads import MicroserviceSpec

__all__ = ["ControllerDecision", "DeploymentController"]


@dataclass(frozen=True)
class ControllerDecision:
    """One controller evaluation (a Fig. 12 / Fig. 15 log record)."""

    time: float
    load: float
    mu: float
    lambda_max: float
    mode: DeployMode
    switched: bool
    #: the mode a successful switch request targeted (None if no switch)
    switch_target: Optional[DeployMode]
    guard_blocked: bool
    weights: Tuple[float, float, float]
    pressures: Tuple[float, float, float]
    #: True when this decision ran under stale-telemetry safe mode (the
    #: meters had been silent past the staleness budget, so the
    #: controller pinned the conservative IaaS mode instead of trusting
    #: an outdated pressure vector)
    safe_mode: bool = False
    #: True when the overload breaker held the service in brownout at
    #: decision time — switch requests are suppressed by the engine until
    #: the breaker half-opens
    brownout: bool = False
    #: True when the flash-crowd detector saw this load sample jump past
    #: ``surge_factor`` times the smoothed load — surge mode widens the
    #: Eq. 7 prewarm margin while it holds
    surge: bool = False


class DeploymentController:
    """Periodic deploy-mode decisions for one microservice."""

    def __init__(
        self,
        env: Environment,
        spec: MicroserviceSpec,
        engine: HybridExecutionEngine,
        monitor: ContentionMonitor,
        config: AmoebaConfig,
        guard: Optional[Callable[[float, float], bool]] = None,
    ) -> None:
        """``guard(load, service_time)`` is the co-tenant QoS check: it
        receives this service's load and predicted serverless service
        time and returns True when switching in will not break any
        existing tenant.  ``None`` disables the guard (ablation)."""
        self.env = env
        self.spec = spec
        self.engine = engine
        self.monitor = monitor
        self.config = config
        self.guard = guard
        self.decisions: List[ControllerDecision] = []
        #: decision periods spent in stale-telemetry safe mode
        self.safe_mode_periods = 0
        #: decision periods spent under a breaker-forced brownout
        self.brownout_periods = 0
        #: decision periods on which the flash-crowd detector tripped
        self.surge_periods = 0
        # smoothed load for the flash-crowd detector (None until the
        # first sample — the detector never trips on its own baseline)
        self._load_ewma: Optional[float] = None
        # Eq. 8: the sample period must absorb one accidental cold start
        platform_cfg = engine.serverless.config
        t_min = sample_period(
            cold_start=platform_cfg.cold_start_median,
            qos_target=spec.qos_target,
            exec_time=spec.exec_time,
            allowed_error=config.allowed_error,
        )
        self.period = float(
            np.clip(t_min, config.min_sample_period, config.max_sample_period)
        )
        self._proc = env.process(self._run())

    # -- the decision loop ----------------------------------------------------
    def _run(self) -> Iterator[Event]:
        cfg = self.config
        spec = self.spec
        name = spec.name
        while True:
            yield self.env.timeout(self.period)
            now = self.env.now
            metrics = self.engine.metrics
            load = metrics.load.rate(now)
            surge = self._detect_surge(load, now)
            # an OPEN breaker pins the current mode (engine.can_switch);
            # log it so brownout windows are visible in the decision trace
            brownout = self.engine.in_brownout()
            if brownout:
                self.brownout_periods += 1

            # stale-telemetry safe mode: meters silent past the staleness
            # budget make the pressure vector fiction — pin the
            # conservative IaaS deployment instead of trusting it, skip
            # feedback (it would be regressed against stale pressures),
            # and flag the decision record
            if self.monitor.telemetry_age(now) > cfg.telemetry_stale_periods * self.period:
                self.safe_mode_periods += 1
                switched = False
                if self.engine.mode is DeployMode.SERVERLESS:
                    switched = self.engine.request_switch(DeployMode.IAAS, load)
                self.decisions.append(
                    ControllerDecision(
                        time=now,
                        load=load,
                        mu=float("nan"),
                        lambda_max=0.0,
                        mode=self.engine.mode,
                        switched=switched,
                        switch_target=DeployMode.IAAS if switched else None,
                        guard_blocked=False,
                        weights=(float("nan"), float("nan"), float("nan")),
                        pressures=(float("nan"), float("nan"), float("nan")),
                        safe_mode=True,
                        brownout=brownout,
                        surge=surge,
                    )
                )
                continue

            # feedback to the monitor: latest serverless-path observation
            observed = self._serverless_observation()
            if observed is not None and observed > 0:
                self.monitor.add_feedback(name, load, observed)

            est = self._estimate_mu(load)
            n_avail = self.engine.serverless.n_max(name)
            if n_avail < 1:
                lam_max = 0.0
            elif cfg.discriminant == "mmn":
                lam_max = max_arrival_rate(est.mu, n_avail, spec.qos_target, cfg.r_ile)
            elif cfg.discriminant == "mdn":
                # extension: correct the M/M/N wait for near-deterministic
                # service via Allen–Cunneen (C_s² from the exec jitter)
                lam_max = max_arrival_rate_gg(
                    est.mu,
                    n_avail,
                    spec.qos_target,
                    cfg.r_ile,
                    ca2=1.0,
                    cs2=math.expm1(spec.exec_sigma**2),
                )
            else:  # naive utilization rule (ablation)
                lam_max = cfg.naive_rho_max * n_avail * est.mu

            switched = False
            switch_target: Optional[DeployMode] = None
            guard_blocked = False
            mode = self.engine.mode
            if mode is DeployMode.SERVERLESS and load > cfg.switch_out_margin * lam_max:
                switched = self.engine.request_switch(DeployMode.IAAS, load)
                if switched:
                    switch_target = DeployMode.IAAS
            elif mode is DeployMode.IAAS and load < cfg.switch_in_margin * lam_max:
                service_time = est.predicted_latency - est.alpha
                if self.guard is not None and not self.guard(load, service_time):
                    guard_blocked = True
                else:
                    switched = self.engine.request_switch(DeployMode.SERVERLESS, load)
                    if switched:
                        switch_target = DeployMode.SERVERLESS

            self.decisions.append(
                ControllerDecision(
                    time=now,
                    load=load,
                    mu=est.mu,
                    lambda_max=lam_max,
                    mode=self.engine.mode,
                    switched=switched,
                    switch_target=switch_target,
                    guard_blocked=guard_blocked,
                    weights=est.weights,
                    pressures=self.monitor.pressure(),
                    brownout=brownout,
                    surge=surge,
                )
            )

    def _detect_surge(self, load: float, now: float) -> bool:
        """Flash-crowd detection: a load jump past ``surge_factor``× the EWMA.

        Draw-free arithmetic on the load signal the controller already
        reads.  The first sample seeds the baseline without tripping; a
        tripped sample is *not* folded into the EWMA, so a multi-period
        crowd stays visible against the pre-spike baseline instead of
        normalising itself away.  Each trip (re)arms the engine's surge
        window for ``surge_hold_periods`` decision periods.
        """
        cfg = self.config
        ewma = self._load_ewma
        surge = ewma is not None and ewma > 1e-9 and load > cfg.surge_factor * ewma
        if surge:
            self.surge_periods += 1
            self.engine.note_surge(now + cfg.surge_hold_periods * self.period)
        else:
            self._load_ewma = (
                load if ewma is None else ewma + cfg.surge_ewma_alpha * (load - ewma)
            )
        return surge

    def _serverless_observation(self) -> Optional[float]:
        """Most recent serverless-path latency sample for feedback."""
        metrics = self.engine.metrics
        if self.engine.mode is DeployMode.SERVERLESS:
            if not metrics.recent:
                return None
            recent = list(metrics.recent)[-32:]
            return float(np.mean(recent))
        lat = metrics.mean_canary_latency()
        return None if math.isnan(lat) else lat

    def _estimate_mu(self, load: float) -> MuEstimate:
        """Eq. 6 with the monitor's current pressure and weights."""
        name = self.spec.name
        surfaces = self.monitor.surfaces(name)
        pressures = self.monitor.pressure()
        weights, bias = self.monitor.weights(name)
        axis_lat = surfaces.axis_latencies(pressures, load)
        return mu_value(
            service=name,
            solo_latency=surfaces.solo_latency,
            axis_latencies=axis_lat,
            weights=weights,
            alpha=surfaces.alpha,
            bias=bias,
        )

    # -- analysis helpers ---------------------------------------------------------
    def lambda_max_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, λ(μ)) over the run — Fig. 15's predicted switch points."""
        if not self.decisions:
            return np.empty(0), np.empty(0)
        t = np.array([d.time for d in self.decisions])
        lm = np.array([d.lambda_max for d in self.decisions])
        return t, lm

    def switch_loads(self) -> List[Tuple[float, str, float]]:
        """(time, direction, load) for every accepted switch (Fig. 12 stars)."""
        return [
            (
                d.time,
                "to_serverless" if d.switch_target is DeployMode.SERVERLESS else "to_iaas",
                d.load,
            )
            for d in self.decisions
            if d.switched
        ]
