"""Amoeba itself: the paper's contribution.

* :mod:`repro.sim.queueing` (re-exported here) — the M/M/N model
  (Eqs. 1–5): stationary
  distribution, waiting-time CDF, r-ile waits, and the discriminant
  function λ(μ) that decides whether serverless deployment can meet a
  QoS target.
* :mod:`repro.core.meters` — the three contention meters and their
  profiled latency-vs-pressure curves (Fig. 8), plus curve inversion for
  the measurement step.
* :mod:`repro.core.surfaces` — per-microservice latency surfaces
  L(P, V_u) (Fig. 9) with analytic and measured builders.
* :mod:`repro.core.mu_model` — Eq. 6: the contention-corrected
  per-container processing capacity μ, and the pessimistic additive
  variant used by the Amoeba-NoM ablation.
* :mod:`repro.core.monitor` — the multi-resource contention monitor:
  meter scheduling, heartbeat ingestion, PCA weight calibration (§VI-A)
  and the Eq. 8 sample-period rule.
* :mod:`repro.core.prewarm` — Eq. 7 prewarm sizing.
* :mod:`repro.core.engine` — the hybrid execution engine (routing and
  the prewarm→ack→flip→drain switch protocol, §V-B).
* :mod:`repro.core.controller` — the contention-aware deployment
  controller (§IV) with the co-tenant QoS guard (§III).
* :mod:`repro.core.runtime` — the Amoeba facade and its ablation
  variants (NoM, NoP) plus pure-IaaS / pure-serverless baselines.
* :mod:`repro.core.invariants` — the always-on kernel invariant monitor
  (conservation, clock monotonicity, no-wedge liveness).
"""

from typing import Any

from repro.core.config import AmoebaConfig
from repro.sim.queueing import (
    discriminant_lambda,
    erlang_c,
    erlang_pi0,
    erlang_pin,
    max_arrival_rate,
    min_servers,
    qos_satisfied,
    sojourn_quantile,
    wait_cdf,
    wait_quantile,
)


def __getattr__(name: str) -> Any:
    # lazy: the runtime pulls in the platform packages; importing it
    # eagerly here would make every `import repro.core` pay for the
    # whole dependency tree (and ARCH layering treats core as the top
    # kernel layer — see repro.analysis.rules_arch)
    if name == "AmoebaRuntime":
        from repro.core.runtime import AmoebaRuntime

        return AmoebaRuntime
    if name in ("InvariantMonitor", "InvariantViolation"):
        from repro.core import invariants

        return getattr(invariants, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AmoebaConfig",
    "AmoebaRuntime",
    "InvariantMonitor",
    "InvariantViolation",
    "discriminant_lambda",
    "erlang_c",
    "erlang_pi0",
    "erlang_pin",
    "max_arrival_rate",
    "min_servers",
    "qos_satisfied",
    "sojourn_quantile",
    "wait_cdf",
    "wait_quantile",
]
