"""Amoeba runtime configuration.

One dataclass gathers every knob of the paper's three components; the
ablation variants of §VII are just flag flips (``use_pca=False`` →
Amoeba-NoM, ``prewarm=False`` → Amoeba-NoP).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["AmoebaConfig"]


@dataclass(frozen=True)
class AmoebaConfig:
    """Knobs of the Amoeba runtime."""

    #: the QoS percentile (paper: 95%-ile latency)
    r_ile: float = 0.95
    #: allowed error scope ``e`` in the Eq. 8 sample-period rule
    allowed_error: float = 0.10
    #: floor for the controller's decision period, seconds (Eq. 8 can
    #: give near-zero periods for slack QoS targets)
    min_sample_period: float = 15.0
    #: ceiling for the decision period, seconds
    max_sample_period: float = 120.0
    #: hysteresis: switch IaaS→serverless only when λ < in_margin·λ(μ)
    switch_in_margin: float = 0.70
    #: hysteresis: switch serverless→IaaS when λ > out_margin·λ(μ)
    switch_out_margin: float = 0.90
    #: minimum time between deploy-mode switches of one service, seconds
    min_dwell: float = 180.0
    #: fraction of IaaS-mode queries shadowed to the serverless platform
    #: (§III step 1: Amoeba "also routes queries of S_a to the serverless
    #: platform" to collect consumption/latency feedback)
    canary_fraction: float = 0.02
    #: per-meter invocation rate on the serverless platform (§VII-E: 1 QPS)
    meter_qps: float = 1.0
    #: window of recent meter latencies used for pressure inversion
    meter_window: int = 30
    #: PCA recalibration: minimum heartbeat rows before the first fit and
    #: the sliding window length
    pca_min_rows: int = 12
    pca_window: int = 120
    #: fraction of variance the kept principal components must cover
    pca_variance_coverage: float = 0.90
    #: admissible-load rule: "mmn" = the paper's Eq. 5 discriminant;
    #: "mdn" = Allen–Cunneen-corrected wait for near-deterministic
    #: service (library extension, see queueing.wait_quantile_gg);
    #: "utilization" = a naive λ ≤ ρ_max·n·μ rule (ablation bench)
    discriminant: str = "mmn"
    #: the ρ_max of the naive utilization rule
    naive_rho_max: float = 0.70
    #: enable the PCA weight calibration (False = Amoeba-NoM)
    use_pca: bool = True
    #: enable container prewarming before a switch (False = Amoeba-NoP)
    prewarm: bool = True
    #: extra containers prewarmed beyond the Eq. 7 count (burst headroom)
    prewarm_headroom: int = 1
    #: pressure grid used when building analytic latency surfaces
    surface_pressure_max: float = 1.6
    surface_pressure_points: int = 9
    surface_load_points: int = 8
    # -- switch-protocol degradation deadlines (fault tolerance) ----------
    #: deadline for the prewarm acknowledgement before a switch-in aborts
    switch_ack_timeout: float = 30.0
    #: deadline for the VM boot before a switch-out aborts
    switch_boot_timeout: float = 120.0
    #: deadline for the old rental's drain before it is force-released
    drain_timeout: float = 120.0
    #: meters silent for more than this many decision periods → the
    #: controller enters stale-telemetry safe mode (pins IaaS)
    telemetry_stale_periods: float = 3.0
    # -- flash-crowd surge mode -------------------------------------------
    #: a load sample this many times the smoothed load trips surge mode
    #: (diurnal drift moves the EWMA along with it and never trips)
    surge_factor: float = 1.8
    #: smoothing constant of the controller's load EWMA, in (0, 1]
    surge_ewma_alpha: float = 0.3
    #: decision periods a detected surge stays armed without retrigger
    surge_hold_periods: int = 2
    #: extra containers added to the Eq. 7 prewarm count while surging
    #: (a spike-widened margin so a flash crowd lands on warm capacity)
    surge_headroom: int = 4

    def __post_init__(self) -> None:
        if not 0.0 < self.r_ile < 1.0:
            raise ValueError(f"r_ile must be in (0, 1), got {self.r_ile}")
        if not 0.0 <= self.allowed_error < 1.0:
            raise ValueError(f"allowed_error must be in [0, 1), got {self.allowed_error}")
        if not 0.0 < self.switch_in_margin < self.switch_out_margin <= 1.0:
            raise ValueError("need 0 < switch_in_margin < switch_out_margin <= 1")
        if self.min_sample_period <= 0 or self.max_sample_period < self.min_sample_period:
            raise ValueError("sample-period bounds are inconsistent")
        if not 0.0 <= self.canary_fraction <= 0.5:
            raise ValueError(f"canary_fraction must be in [0, 0.5], got {self.canary_fraction}")
        if self.meter_qps <= 0 or self.meter_window < 1:
            raise ValueError("meter settings must be positive")
        if self.pca_min_rows < 4 or self.pca_window < self.pca_min_rows:
            raise ValueError("PCA window settings are inconsistent")
        if not 0.0 < self.pca_variance_coverage <= 1.0:
            raise ValueError("pca_variance_coverage must be in (0, 1]")
        if self.min_dwell < 0 or self.prewarm_headroom < 0:
            raise ValueError("min_dwell and prewarm_headroom must be >= 0")
        if self.surface_pressure_points < 2 or self.surface_load_points < 2:
            raise ValueError("surface grids need at least 2 points per axis")
        if self.surface_pressure_max <= 0:
            raise ValueError("surface_pressure_max must be positive")
        if self.discriminant not in ("mmn", "mdn", "utilization"):
            raise ValueError(f"unknown discriminant {self.discriminant!r}")
        if not 0.0 < self.naive_rho_max < 1.0:
            raise ValueError(f"naive_rho_max must be in (0, 1), got {self.naive_rho_max}")
        if self.switch_ack_timeout <= 0 or self.switch_boot_timeout <= 0:
            raise ValueError("switch deadlines must be positive")
        if self.drain_timeout <= 0 or self.telemetry_stale_periods <= 0:
            raise ValueError("drain_timeout and telemetry_stale_periods must be positive")
        if self.surge_factor <= 1.0:
            raise ValueError(f"surge_factor must exceed 1, got {self.surge_factor}")
        if not 0.0 < self.surge_ewma_alpha <= 1.0:
            raise ValueError(f"surge_ewma_alpha must be in (0, 1], got {self.surge_ewma_alpha}")
        if self.surge_hold_periods < 1 or self.surge_headroom < 0:
            raise ValueError("surge_hold_periods must be >= 1 and surge_headroom >= 0")

    def variant_nom(self) -> "AmoebaConfig":
        """Amoeba-NoM: PCA correction disabled (§VII-C)."""
        return replace(self, use_pca=False)

    def variant_nop(self) -> "AmoebaConfig":
        """Amoeba-NoP: container prewarming disabled (§VII-D)."""
        return replace(self, prewarm=False)
