"""Compatibility shim: the M/M/N math moved to :mod:`repro.sim.queueing`.

The Eq. 1–5 queueing model is pure stdlib math used by every layer
(IaaS sizing, overload admission, the controller, the fleet generator),
so it now lives at the bottom of the layer stack in ``repro.sim``.
This module re-exports the full public surface so existing
``repro.core.queueing`` imports keep working.
"""

from repro.sim.queueing import (
    discriminant_lambda,
    erlang_c,
    erlang_pi0,
    erlang_pin,
    log_erlang_c,
    log_erlang_pi0,
    log_erlang_pin,
    max_arrival_rate,
    max_arrival_rate_gg,
    mean_wait,
    min_servers,
    qos_satisfied,
    qos_satisfied_gg,
    sojourn_quantile,
    wait_cdf,
    wait_quantile,
    wait_quantile_gg,
)

__all__ = [
    "discriminant_lambda",
    "erlang_c",
    "erlang_pi0",
    "erlang_pin",
    "log_erlang_c",
    "log_erlang_pi0",
    "log_erlang_pin",
    "max_arrival_rate",
    "max_arrival_rate_gg",
    "mean_wait",
    "min_servers",
    "qos_satisfied",
    "qos_satisfied_gg",
    "sojourn_quantile",
    "wait_cdf",
    "wait_quantile",
    "wait_quantile_gg",
]
