"""The M/M/N queueing model of paper §IV (Eqs. 1–5).

Queries arrive Poisson(λ), N containers each serve exp(μ), one FIFO queue
of infinite capacity.  With ρ = λ/(Nμ) < 1 the stationary distribution is
Eq. 1; the waiting-time CDF is Eq. 4:

    F_W(t) = 1 − π_N/(1−ρ) · exp(−Nμ(1−ρ)t)

and the paper's discriminant function (Eq. 5) inverts "the r-ile of
(wait + mean service) equals the QoS target T_D" for the largest
admissible arrival rate:

    λ(μ) = Nμ + ln[(1−r)(1−ρ)/π_N] / (T_D − 1/μ)

Because ρ and π_N on the right-hand side themselves depend on λ, Eq. 5 is
a fixed-point equation; :func:`discriminant_lambda` solves it by damped
iteration, and :func:`max_arrival_rate` solves the same threshold by
bisection (the two agree — a regression test asserts it).  All probability
computations run in log space so they stay finite for large N.
"""

from __future__ import annotations

import math

__all__ = [
    "discriminant_lambda",
    "erlang_c",
    "erlang_pi0",
    "erlang_pin",
    "max_arrival_rate",
    "max_arrival_rate_gg",
    "mean_wait",
    "min_servers",
    "qos_satisfied",
    "qos_satisfied_gg",
    "sojourn_quantile",
    "wait_cdf",
    "wait_quantile",
    "wait_quantile_gg",
]


def _validate(n: int, rho: float) -> None:
    if n < 1:
        raise ValueError(f"need at least one server, got n={n}")
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"utilization must be in [0, 1) for a stable queue, got rho={rho}")


def erlang_pi0(n: int, rho: float) -> float:
    """π₀: probability the system is empty (Eq. 1 normalization).

    Computed via the ratio recurrence term_{k+1}/term_k = nρ/(k+1), which
    avoids factorial overflow for any n.
    """
    _validate(n, rho)
    if rho == 0.0:
        return 1.0
    a = n * rho  # offered load in erlangs
    total = 1.0  # k = 0 term
    term = 1.0
    for k in range(1, n):
        term *= a / k
        total += term
    # tail term: (nρ)^n / (n! (1-ρ))
    term *= a / n
    total += term / (1.0 - rho)
    return 1.0 / total


def erlang_pin(n: int, rho: float) -> float:
    """π_N: probability exactly N queries are in the system (Eq. 1)."""
    _validate(n, rho)
    if rho == 0.0:
        return 0.0
    pi0 = erlang_pi0(n, rho)
    a = n * rho
    # (nρ)^n / n! in log space
    log_term = n * math.log(a) - math.lgamma(n + 1)
    return math.exp(log_term + math.log(pi0))


def erlang_c(n: int, rho: float) -> float:
    """Erlang-C: probability an arrival must wait, P{W > 0} = π_N/(1−ρ)."""
    _validate(n, rho)
    if rho == 0.0:
        return 0.0
    return erlang_pin(n, rho) / (1.0 - rho)


def wait_cdf(t: float, lam: float, mu: float, n: int) -> float:
    """F_W(t): probability the queueing delay is at most ``t`` (Eq. 4)."""
    if t < 0:
        return 0.0
    if lam < 0 or mu <= 0:
        raise ValueError("lam must be >= 0 and mu > 0")
    rho = lam / (n * mu)
    _validate(n, rho)
    if lam == 0.0:
        return 1.0
    pw = erlang_c(n, rho)
    return 1.0 - pw * math.exp(-n * mu * (1.0 - rho) * t)


def wait_quantile(r: float, lam: float, mu: float, n: int) -> float:
    """W_r: the r-ile of the queueing delay (inverse of Eq. 4).

    Zero when P{W > 0} ≤ 1 − r (the r-ile arrival does not wait at all).
    """
    if not 0.0 < r < 1.0:
        raise ValueError(f"r must be in (0, 1), got {r}")
    if lam < 0 or mu <= 0:
        raise ValueError("lam must be >= 0 and mu > 0")
    rho = lam / (n * mu)
    _validate(n, rho)
    if lam == 0.0:
        return 0.0
    pw = erlang_c(n, rho)
    if pw <= (1.0 - r):
        return 0.0
    return math.log(pw / (1.0 - r)) / (n * mu * (1.0 - rho))


def mean_wait(lam: float, mu: float, n: int) -> float:
    """E[W]: mean queueing delay = P{W>0} / (Nμ − λ)."""
    if lam < 0 or mu <= 0:
        raise ValueError("lam must be >= 0 and mu > 0")
    rho = lam / (n * mu)
    _validate(n, rho)
    if lam == 0.0:
        return 0.0
    return erlang_c(n, rho) / (n * mu - lam)


def sojourn_quantile(r: float, lam: float, mu: float, n: int) -> float:
    """The paper's r-ile end-to-end estimate: W_r + 1/μ.

    (Eq. 5 budgets T_D − 1/μ for the wait, i.e. it adds the *mean*
    service time to the wait quantile rather than convolving the two —
    we reproduce that approximation faithfully.)
    """
    return wait_quantile(r, lam, mu, n) + 1.0 / mu


def qos_satisfied(lam: float, mu: float, n: int, qos: float, r: float = 0.95) -> bool:
    """Can N containers of capacity μ meet ``qos`` at arrival rate λ?"""
    if qos <= 0:
        raise ValueError(f"qos must be positive, got {qos}")
    if lam >= n * mu:
        return False  # unstable queue: no
    return sojourn_quantile(r, lam, mu, n) <= qos


def max_arrival_rate(mu: float, n: int, qos: float, r: float = 0.95, tol: float = 1e-9) -> float:
    """Largest λ for which ``qos_satisfied`` holds, by bisection.

    This is the operational meaning of the paper's discriminant function:
    if the observed load λ is at most this value, switching the service
    to the serverless platform keeps its r-ile latency within T_D.
    Returns 0.0 when even a lone query misses the target (1/μ > T_D).
    """
    if mu <= 0 or n < 1:
        raise ValueError("mu must be > 0 and n >= 1")
    if qos <= 1.0 / mu:
        return 0.0
    lo, hi = 0.0, n * mu * (1.0 - 1e-12)
    if qos_satisfied(hi, mu, n, qos, r):
        return hi
    while hi - lo > tol * max(1.0, n * mu):
        mid = 0.5 * (lo + hi)
        if qos_satisfied(mid, mu, n, qos, r):
            lo = mid
        else:
            hi = mid
    return lo


def discriminant_lambda(
    mu: float,
    n: int,
    qos: float,
    r: float = 0.95,
    max_iter: int = 200,
    damping: float = 0.5,
) -> float:
    """Paper Eq. 5 by damped fixed-point iteration.

        λ(μ) = Nμ + ln[(1−r)(1−ρ)/π_N] / (T_D − 1/μ)

    The iteration is started from the bisection answer's neighbourhood
    (0.5·Nμ) and damped because the bare map can oscillate near
    saturation.  Agrees with :func:`max_arrival_rate` to solver
    tolerance; a unit test enforces that.
    """
    if mu <= 0 or n < 1:
        raise ValueError("mu must be > 0 and n >= 1")
    if qos <= 1.0 / mu:
        return 0.0
    budget = qos - 1.0 / mu
    lam = 0.5 * n * mu
    for _ in range(max_iter):
        rho = lam / (n * mu)
        if not 0.0 < rho < 1.0:
            rho = min(max(rho, 1e-9), 1.0 - 1e-9)
        pin = erlang_pin(n, rho)
        if pin <= 0.0:
            # no queueing at all at this λ: QoS holds up to (numerically) Nμ
            lam_new = n * mu * (1.0 - 1e-9)
        else:
            arg = (1.0 - r) * (1.0 - rho) / pin
            if arg >= 1.0:
                # r-ile wait already zero: the wait constraint is slack
                lam_new = n * mu * (1.0 - 1e-9)
            else:
                lam_new = n * mu + math.log(arg) / budget
        lam_new = min(max(lam_new, 0.0), n * mu * (1.0 - 1e-12))
        nxt = (1.0 - damping) * lam + damping * lam_new
        if abs(nxt - lam) < 1e-10 * max(1.0, n * mu):
            lam = nxt
            break
        lam = nxt
    return lam


def _gg_factor(ca2: float, cs2: float) -> float:
    """Allen–Cunneen variability factor (C_a² + C_s²)/2."""
    if ca2 < 0 or cs2 < 0:
        raise ValueError("squared coefficients of variation must be >= 0")
    return 0.5 * (ca2 + cs2)


def wait_quantile_gg(
    r: float, lam: float, mu: float, n: int, ca2: float = 1.0, cs2: float = 0.0
) -> float:
    """G/G/N wait r-ile via the Allen–Cunneen correction.

    The paper's Eq. 5 assumes exponential service (M/M/N), but FaaS
    kernels are near-deterministic, which makes M/M/N waits conservative
    by about 2× (M/D/1's mean wait is exactly half of M/M/1's).  The
    Allen–Cunneen approximation scales the M/M/N wait by
    (C_a² + C_s²)/2; with Poisson arrivals (C_a² = 1) and deterministic
    service (C_s² = 0) that recovers the M/D/N half-wait rule.  This is
    an *extension* beyond the paper — the default discriminant stays
    faithful to Eq. 5.
    """
    return wait_quantile(r, lam, mu, n) * _gg_factor(ca2, cs2)


def qos_satisfied_gg(
    lam: float, mu: float, n: int, qos: float, r: float = 0.95, ca2: float = 1.0, cs2: float = 0.0
) -> bool:
    """G/G/N analogue of :func:`qos_satisfied`."""
    if qos <= 0:
        raise ValueError(f"qos must be positive, got {qos}")
    if lam >= n * mu:
        return False
    return wait_quantile_gg(r, lam, mu, n, ca2, cs2) + 1.0 / mu <= qos


def max_arrival_rate_gg(
    mu: float,
    n: int,
    qos: float,
    r: float = 0.95,
    ca2: float = 1.0,
    cs2: float = 0.0,
    tol: float = 1e-9,
) -> float:
    """Largest admissible λ under the Allen–Cunneen-corrected wait."""
    if mu <= 0 or n < 1:
        raise ValueError("mu must be > 0 and n >= 1")
    if qos <= 1.0 / mu:
        return 0.0
    lo, hi = 0.0, n * mu * (1.0 - 1e-12)
    if qos_satisfied_gg(hi, mu, n, qos, r, ca2, cs2):
        return hi
    while hi - lo > tol * max(1.0, n * mu):
        mid = 0.5 * (lo + hi)
        if qos_satisfied_gg(mid, mu, n, qos, r, ca2, cs2):
            lo = mid
        else:
            hi = mid
    return lo


def min_servers(lam: float, mu: float, qos: float, r: float = 0.95, n_cap: int = 4096) -> int:
    """Smallest N meeting ``qos`` at load λ; raises if ``n_cap`` is not enough.

    Used both by the controller (how many containers must be warm) and by
    the IaaS "just-enough" sizing.
    """
    if lam < 0 or mu <= 0:
        raise ValueError("lam must be >= 0 and mu > 0")
    if qos <= 1.0 / mu:
        raise ValueError(f"QoS {qos}s is below the mean service time {1.0 / mu}s: unattainable")
    if lam == 0.0:
        return 1
    n = max(1, math.ceil(lam / mu))
    while n <= n_cap:
        if lam < n * mu and qos_satisfied(lam, mu, n, qos, r):
            return n
        n += 1
    raise ValueError(f"no server count up to {n_cap} meets qos={qos} at lam={lam}, mu={mu}")
