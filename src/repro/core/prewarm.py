"""Eq. 7: how many containers to prewarm before a switch (paper §V-A).

A container runs one query at a time, so ``n`` warm containers sustain a
query speed of ``n / QoS_t`` while keeping every query inside the QoS
target.  Eq. 7 picks the smallest such n for the current load V_u:

    (n − 1)/QoS_t < V_u ≤ n/QoS_t    ⇒    n = ⌈V_u · QoS_t⌉

"The value of n … ensures that the prewarmed containers is enough and
leaves space for creating more containers for burst invocations."
"""

from __future__ import annotations

import math

__all__ = ["prewarm_count"]


def prewarm_count(load: float, qos_target: float, headroom: int = 0, n_cap: int = 10**6) -> int:
    """Eq. 7 container count for ``load`` queries/s, plus ``headroom``.

    Always at least 1 (a switch with zero warm containers would cold
    start the very first query); capped at ``n_cap`` (the §IV-A n_max).
    """
    if load < 0:
        raise ValueError(f"load must be >= 0, got {load}")
    if qos_target <= 0:
        raise ValueError(f"qos_target must be positive, got {qos_target}")
    if headroom < 0:
        raise ValueError(f"headroom must be >= 0, got {headroom}")
    if n_cap < 1:
        raise ValueError(f"n_cap must be >= 1, got {n_cap}")
    n = math.ceil(load * qos_target)
    return max(1, min(n + headroom, n_cap))
