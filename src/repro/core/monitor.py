"""The multi-resource contention monitor (paper §VI).

Responsibilities:

1. **Quantify contention** — run the three contention meters on the
   production serverless platform at 1 QPS each (§VII-E), phase-shifted
   round-robin so their overheads do not stack, and invert the profiled
   Fig. 8 curves to turn meter latencies into the pressure vector
   ``P = (P_cpu, P_io, P_net)``.
2. **Calibrate Eq. 6's weights** — ingest heartbeat feedback
   (surface-predicted per-axis latencies vs. the latency actually
   observed for queries the engine routed to the serverless platform)
   and fit the weights by *principal-component regression*: PCA merges
   the strongly-correlated per-axis degradations "into as few new
   variables as possible and makes them pairwise unrelated" (§VI-A),
   then ordinary least squares in that decorrelated basis gives stable
   weights even from few, collinear samples.
3. **Bound the sample period** — Eq. 8 makes the feedback window long
   enough that a single accidental cold start cannot flip the
   controller's judgement.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.core.config import AmoebaConfig
from repro.core.meters import AXIS_METERS, METER_SPECS, MeterProfile, profile_meter
from repro.core.surfaces import SurfaceSet
from repro.faults import FaultInjector
from repro.serverless import ServerlessPlatform
from repro.sim import Environment, Event, RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads import Query

__all__ = ["ContentionMonitor", "pcr_fit", "sample_period"]


def sample_period(
    cold_start: float, qos_target: float, exec_time: float, allowed_error: float
) -> float:
    """Eq. 8 lower bound on the feedback sample period T.

        T > (cold_start − QoS_t + t_exec) / ((1 − e)·QoS_t)

    Nonpositive numerators (QoS slack enough to absorb a cold start)
    yield 0 — any period is safe.
    """
    if qos_target <= 0 or exec_time <= 0 or cold_start < 0:
        raise ValueError("cold_start >= 0 and positive qos_target/exec_time required")
    if not 0.0 <= allowed_error < 1.0:
        raise ValueError(f"allowed_error must be in [0, 1), got {allowed_error}")
    numerator = cold_start - qos_target + exec_time
    if numerator <= 0:
        return 0.0
    return numerator / ((1.0 - allowed_error) * qos_target)


def pcr_fit(
    X: np.ndarray, y: np.ndarray, variance_coverage: float = 0.90, w_max: float = 3.0
) -> Tuple[np.ndarray, float]:
    """Principal-component regression of y on X (rows = samples).

    Returns ``(weights, bias)`` with weights clipped to [0, w_max]
    (negative weights would mean contention *speeds a query up*, which is
    noise, and runaway weights would destabilize μ).  Keeps the smallest
    set of principal components covering ``variance_coverage`` of the
    centred predictors' variance.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.size:
        raise ValueError("X must be (n, d) and y (n,) with matching n")
    if X.shape[0] < 2:
        raise ValueError("need at least 2 samples to fit")
    if not 0.0 < variance_coverage <= 1.0:
        raise ValueError("variance_coverage must be in (0, 1]")
    x_mean = X.mean(axis=0)
    y_mean = float(y.mean())
    Xc = X - x_mean
    yc = y - y_mean
    U, S, Vt = np.linalg.svd(Xc, full_matrices=False)
    var = S**2
    total = float(var.sum())
    if total <= 1e-18:
        # predictors carried no information (e.g. zero contention all
        # along); keep a neutral fit
        return np.zeros(X.shape[1]), y_mean
    frac = np.cumsum(var) / total
    k = int(np.searchsorted(frac, variance_coverage) + 1)
    k = min(k, int(np.sum(S > 1e-12 * S[0])))
    k = max(k, 1)
    beta = Vt[:k].T @ ((U[:, :k].T @ yc) / S[:k])
    weights = np.clip(beta, 0.0, w_max)
    bias = y_mean - float(x_mean @ weights)
    return weights, bias


@dataclass
class _ServiceCalibration:
    """Per-service calibration state."""

    surfaces: SurfaceSet
    weights: np.ndarray
    bias: float
    rows: Deque[Tuple[np.ndarray, float]]
    refits: int = 0


class ContentionMonitor:
    """Meters + pressure inversion + PCA weight calibration."""

    def __init__(
        self,
        env: Environment,
        platform: ServerlessPlatform,
        config: AmoebaConfig,
        rng: RngRegistry,
        profiles: Optional[Dict[str, MeterProfile]] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.env = env
        self.platform = platform
        self.config = config
        self.rng = rng
        self.faults = faults
        self.profiles: Dict[str, MeterProfile] = (
            profiles
            if profiles is not None
            else {
                name: profile_meter(
                    name, contention=platform.machine.config, cfg=platform.config
                )
                for name in AXIS_METERS
            }
        )
        self._meter_metrics: Dict[str, ServiceMetrics] = {}
        self._services: Dict[str, _ServiceCalibration] = {}
        self._qid = itertools.count()
        self._started = False
        self._started_at = 0.0

    # -- meter scheduling -------------------------------------------------------
    def start(self) -> None:
        """Register the meters and begin the 1 QPS daemons (round-robin)."""
        if self._started:
            raise RuntimeError("monitor already started")
        self._started = True
        self._started_at = self.env.now
        period = 1.0 / self.config.meter_qps
        for i, name in enumerate(AXIS_METERS):
            metrics = ServiceMetrics(name, METER_SPECS[name].qos_target)
            self._meter_metrics[name] = metrics
            self.platform.register(METER_SPECS[name], metrics=metrics)
            # phase-shift by a third of a period: the paper's "round time
            # trip" scheduling that keeps total overhead <= one meter's
            offset = (i / len(AXIS_METERS)) * period
            self.env.process(self._daemon(name, offset, period))

    def _daemon(self, name: str, offset: float, period: float) -> Iterator[Event]:
        yield self.env.timeout(offset)
        while True:
            if self.faults is not None:
                outage = self.faults.meter_outage(name)
                if outage > 0.0:
                    # the meter goes completely silent for the outage;
                    # the controller's stale-telemetry safe mode is what
                    # keeps decisions sane while it lasts
                    yield self.env.timeout(outage)
                    continue
                if self.faults.meter_sample_dropped(name):
                    yield self.env.timeout(period)
                    continue
            q = Query(
                qid=next(self._qid), service=name, t_submit=self.env.now, canary=True
            )
            self.platform.invoke(q)
            yield self.env.timeout(period)

    def telemetry_age(self, now: float) -> float:
        """Seconds since the *stalest* meter last completed a sample.

        Meters that have not reported yet age from the monitor's start
        time.  Returns 0.0 before :meth:`start` (no meters registered ⇒
        no staleness to speak of).
        """
        if not self._meter_metrics:
            return 0.0
        ages = []
        for metrics in self._meter_metrics.values():
            last = metrics.last_canary_time
            if last is None:
                last = self._started_at
            ages.append(max(now - last, 0.0))
        return max(ages)

    def meter_cpu_overhead(self) -> float:
        """Mean fraction of node cores the meters consume (§VII-E check)."""
        return sum(self.meter_overheads().values())

    def meter_overheads(self) -> Dict[str, float]:
        """Per-meter mean CPU overhead as a fraction of the node's cores."""
        out: Dict[str, float] = {}
        for name in self._meter_metrics:
            ledger = self.platform.function_ledger(name)
            out[name] = ledger.snapshot().mean_cores / self.platform.node.cores
        return out

    # -- measurement (pressure quantification) --------------------------------------
    def pressure(self) -> Tuple[float, float, float]:
        """Current pressure vector from the meters' recent latencies.

        Axes whose meter has produced no sample yet read 0 (the pressure
        a fresh platform actually has).
        """
        out = [0.0, 0.0, 0.0]
        for axis, name in enumerate(AXIS_METERS):
            metrics = self._meter_metrics.get(name)
            if metrics is None or not metrics.canary_latencies:
                continue
            recent = list(metrics.canary_latencies)[-self.config.meter_window :]
            # mean, not median: the profile curves are built from mean
            # latencies, so inversion must be fed the same statistic
            lat = float(np.mean(recent))
            out[axis] = self.profiles[name].invert(lat)
        return (out[0], out[1], out[2])

    # -- calibration ------------------------------------------------------------------
    def register_service(self, name: str, surfaces: SurfaceSet) -> None:
        """Track calibration state for one microservice."""
        if name in self._services:
            raise ValueError(f"service {name!r} already registered with the monitor")
        self._services[name] = _ServiceCalibration(
            surfaces=surfaces,
            weights=np.ones(3),  # pessimistic-safe until feedback arrives
            bias=0.0,
            rows=deque(maxlen=self.config.pca_window),
        )

    def surfaces(self, name: str) -> SurfaceSet:
        """The registered surface set of a service."""
        return self._state(name).surfaces

    def weights(self, name: str) -> Tuple[np.ndarray, float]:
        """Current (weights, bias) for Eq. 6.

        With PCA disabled (Amoeba-NoM) this is always ((1,1,1), 0): the
        pessimistic accumulation of per-axis degradations.
        """
        st = self._state(name)
        if not self.config.use_pca:
            return np.ones(3), 0.0
        return st.weights.copy(), st.bias

    def add_feedback(self, name: str, load: float, observed_latency: float) -> None:
        """Ingest one heartbeat row: prediction inputs vs. observed latency.

        ``observed_latency`` is an end-to-end serverless latency of the
        service (canary or real).  The row stores per-axis degradations
        (the Eq. 6 regressors) against the observed *excess* latency.
        """
        st = self._state(name)
        if observed_latency <= 0:
            raise ValueError(f"observed_latency must be positive, got {observed_latency}")
        P = self.pressure()
        L = st.surfaces.axis_latencies(P, load)
        deg = np.maximum(L - st.surfaces.solo_latency, 0.0)
        y = observed_latency - st.surfaces.solo_latency - st.surfaces.alpha
        st.rows.append((deg, float(y)))
        if self.config.use_pca and len(st.rows) >= self.config.pca_min_rows:
            self._refit(st)

    def _refit(self, st: _ServiceCalibration) -> None:
        X = np.array([r[0] for r in st.rows])
        y = np.array([r[1] for r in st.rows])
        weights, bias = pcr_fit(X, y, self.config.pca_variance_coverage)
        st.weights = weights
        # the bias absorbs queueing residue in the observations; never let
        # it go negative enough to undercut the solo latency floor
        st.bias = float(np.clip(bias, -st.surfaces.solo_latency, st.surfaces.solo_latency * 5))
        st.refits += 1

    def feedback_count(self, name: str) -> int:
        """Heartbeat rows currently buffered for a service."""
        return len(self._state(name).rows)

    def refit_count(self, name: str) -> int:
        """How many PCA refits have run for a service."""
        return self._state(name).refits

    def _state(self, name: str) -> _ServiceCalibration:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"service {name!r} not registered with the monitor") from None
