"""Overload protection: admission control, queue-wait shedding, breakers.

The paper holds the 95th-percentile latency under the QoS target by
switching deployment modes (Eq. 5 / §IV-B), but nothing in the original
system stops an open-loop arrival process from driving either platform
past its capacity envelope.  This package supplies that missing guard
band:

* :class:`OverloadPolicy` — a frozen config describing queue bounds,
  the deadline-aware admission rule and the circuit breaker.
* :class:`CircuitBreaker` — a deterministic CLOSED/OPEN/HALF_OPEN state
  machine driven purely by sim time and observed outcomes.
* :class:`OverloadGovernor` — the per-microservice decision point shared
  by the serverless frontend and the IaaS dispatch path.

Everything here is RNG-free by construction: decisions are pure
functions of sim time and queue state, so ``OverloadPolicy.disabled()``
is bit-identical to running without the layer at all.
"""

from repro.overload.admission import conditional_wait, meets_deadline, predicted_sojourn
from repro.overload.breaker import BreakerState, CircuitBreaker
from repro.overload.governor import OverloadGovernor
from repro.overload.policy import DROP_REASONS, OverloadPolicy

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "DROP_REASONS",
    "OverloadGovernor",
    "OverloadPolicy",
    "conditional_wait",
    "meets_deadline",
    "predicted_sojourn",
]
