"""Per-microservice overload governor.

One :class:`OverloadGovernor` is shared by every layer that handles a
microservice's queries — the serverless frontend, the container pool,
the IaaS dispatch path and the hybrid engine — so the breaker sees the
union of both platforms' outcomes and the prewarm sizing (Eq. 7) can
account for traffic that was shed rather than served.

The governor holds no kernel handle and draws no randomness; callers
pass ``now`` explicitly.  With ``policy.enabled`` false every method is
a constant-time no-op, which is what makes the disabled policy
bit-identical to running without the layer.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.overload.admission import meets_deadline
from repro.overload.breaker import CircuitBreaker
from repro.overload.policy import OverloadPolicy

#: Bound on the shed-time ring buffer; at sane shed rates this holds far
#: more than the sizing horizon needs, and it caps worst-case memory.
_SHED_RING = 4096


class OverloadGovernor:
    """Admission, shedding and breaker decisions for one microservice."""

    def __init__(
        self,
        policy: OverloadPolicy,
        qos_target: float,
        mu_serverless: float,
        mu_iaas: float,
    ) -> None:
        if qos_target <= 0.0:
            raise ValueError("qos_target must be > 0")
        if mu_serverless <= 0.0 or mu_iaas <= 0.0:
            raise ValueError("service rates must be > 0")
        self.policy = policy
        self.qos_target = qos_target
        self.mu_serverless = mu_serverless
        self.mu_iaas = mu_iaas
        #: Absolute queue-wait budget, precomputed from the QoS target.
        self.wait_budget = policy.wait_budget(qos_target)
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(policy) if policy.enabled and policy.breaker_enabled else None
        )
        #: Rejections by reason, across both platforms.
        self.rejections: Dict[str, int] = {"admission": 0, "shed": 0, "breaker": 0}
        self._shed_times: Deque[float] = deque(maxlen=_SHED_RING)

    # -- admission -----------------------------------------------------

    def admit_serverless(
        self, queued: int, busy: int, capacity: int, now: float, deadline: Optional[float] = None
    ) -> Optional[str]:
        """Admission verdict at the serverless frontend.

        Returns ``None`` to admit, else the drop reason.  ``deadline``
        is a per-query *remaining* end-to-end budget (call-graph runs);
        None keeps the service's own QoS target, which is bit-identical
        to the pre-graph behaviour.
        """
        return self._admit(queued, busy, capacity, self.mu_serverless, now, deadline)

    def admit_iaas(
        self, queued: int, busy: int, capacity: int, now: float, deadline: Optional[float] = None
    ) -> Optional[str]:
        """Admission verdict at IaaS dispatch.  ``None`` admits."""
        return self._admit(queued, busy, capacity, self.mu_iaas, now, deadline)

    def _admit(
        self,
        queued: int,
        busy: int,
        capacity: int,
        mu: float,
        now: float,
        deadline: Optional[float] = None,
    ) -> Optional[str]:
        policy = self.policy
        if not policy.enabled:
            return None
        if (
            policy.brownout_queue_depth > 0
            and self.brownout(now)
            and queued >= policy.brownout_queue_depth
        ):
            return "breaker"
        if queued >= policy.max_queue_depth:
            return "admission"
        if policy.admission_control:
            if capacity < 1:
                return "admission"
            target = self.qos_target if deadline is None else deadline
            if target <= 0.0:
                # dead on arrival: the propagated budget is already spent
                return "admission"
            if not meets_deadline(queued, busy, capacity, mu, target, policy.admission_slack):
                return "admission"
        return None

    def should_shed(self, waited: float, target: Optional[float] = None) -> bool:
        """Has a dequeued query already burned its queue-wait budget?

        ``target`` substitutes a per-query remaining budget (measured at
        enqueue time) for the service QoS target when a call-graph run
        propagates deadlines; None keeps the precomputed budget.
        """
        policy = self.policy
        if not (policy.enabled and policy.shed_expired):
            return False
        if target is None:
            return waited > self.wait_budget
        if target <= 0.0:
            return True
        return waited > policy.wait_budget(target)

    # -- signals -------------------------------------------------------

    def note_rejection(self, reason: str, now: float) -> None:
        """Record one dropped query (admission/shed/breaker)."""
        if reason not in self.rejections:
            raise ValueError(f"unknown rejection reason {reason!r}")
        self.rejections[reason] += 1
        self._shed_times.append(now)
        if self.breaker is not None:
            self.breaker.record(now, bad=True)

    def note_outcome(self, ok: bool, now: float) -> None:
        """Record one served query's QoS outcome (crash drops are not ok)."""
        if self.breaker is not None:
            self.breaker.record(now, bad=not ok)

    def note_switch_abort(self, now: float) -> None:
        """An aborted switch leg (PR 3 guard) counts as weighted badness."""
        if self.breaker is not None and self.policy.switch_abort_weight > 0:
            self.breaker.record(now, bad=True, weight=self.policy.switch_abort_weight)

    # -- state ---------------------------------------------------------

    def brownout(self, now: float) -> bool:
        """True while the breaker holds the service in brownout (OPEN)."""
        return self.breaker is not None and self.breaker.is_open(now)

    def shed_rate(self, now: float, horizon: float = 60.0) -> float:
        """Recently shed traffic in queries/s over the trailing horizon.

        Prewarm sizing adds this to the measured load so a
        serverless-bound switch provisions for the demand that was being
        dropped, not just the demand that survived.
        """
        if horizon <= 0.0:
            raise ValueError("horizon must be > 0")
        cutoff = now - horizon
        times = self._shed_times
        while times and times[0] < cutoff:
            times.popleft()
        return len(times) / horizon

    @property
    def total_rejections(self) -> int:
        return sum(self.rejections.values())
