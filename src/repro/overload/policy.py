"""Frozen overload-protection policy.

One :class:`OverloadPolicy` instance describes the whole guard band for
a run: bounded queues, the deadline-aware admission rule, queue-wait
shedding, and the circuit breaker that forces a brownout.  The policy is
frozen so a scenario can be hashed/replayed, and every knob is validated
eagerly — a bad config fails at construction, not mid-run.

The layer is deliberately RNG-free: nothing here draws from a stream,
so :meth:`OverloadPolicy.disabled` yields runs that are ``float.hex``
identical to runs with no overload layer wired in at all.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Canonical drop-reason family shared by telemetry and the reports:
#: ``crash`` (retry exhaustion, PR 3 fault layer), ``admission`` (rejected
#: on arrival), ``shed`` (queue wait blew the budget), ``breaker``
#: (brownout drop-tail), ``preempted`` (killed in-flight when the cloud
#: reclaimed a spot VM share).
DROP_REASONS = ("crash", "admission", "shed", "breaker", "preempted")


@dataclass(frozen=True)
class OverloadPolicy:
    """Configuration for admission control, shedding and the breaker.

    Attributes:
        enabled: Master switch.  ``False`` turns every decision into a
            no-op (the bit-identity baseline).
        max_queue_depth: Hard bound on queued (not in-service) queries
            per function / per IaaS service.  Arrivals beyond it are
            dropped with reason ``admission``.
        admission_control: Reject on arrival when the M/M/N model
            predicts the enqueued query cannot meet the QoS target.
        admission_slack: Multiplier on the predicted queue wait before
            comparing against the deadline; >1 rejects earlier, <1
            tolerates optimistic predictions.  The default of 2 covers
            the gap between the M/M/N *mean* conditional wait and the
            p95 tail the QoS target actually constrains.
        shed_expired: Proactively drop queries at dequeue whose
            accumulated queue wait already exceeds the wait budget.
        queue_wait_budget: Fraction of the QoS target a query may spend
            queued before it is considered dead on arrival at a server.
        breaker_enabled: Arm the per-microservice circuit breaker.
        breaker_window: Maximum number of recent outcomes the CLOSED
            breaker examines (count-based sliding window).
        breaker_window_s: Age bound on those outcomes, seconds of sim
            time; older samples are evicted before judging.
        breaker_min_samples: Minimum samples in the window before the
            breaker may trip (avoids tripping on the first failure).
        breaker_threshold: Bad-outcome fraction (drops + QoS
            violations) at or above which the breaker trips.
        breaker_dwell_s: Dwell in the OPEN state before deterministically
            half-opening at ``opened_at + breaker_dwell_s``.
        breaker_halfopen_samples: Probe outcomes collected in HALF_OPEN
            before deciding to close or re-open.
        switch_abort_weight: How many bad outcomes one aborted switch
            leg (PR 3 guard) counts for; 0 decouples aborts from the
            breaker.
        brownout_queue_depth: During a brownout (breaker OPEN), queues
            degrade to drop-tail at this much smaller depth; 0 disables
            the drop-tail tightening.
    """

    enabled: bool = True
    max_queue_depth: int = 256
    admission_control: bool = True
    admission_slack: float = 2.0
    shed_expired: bool = True
    queue_wait_budget: float = 0.5
    breaker_enabled: bool = True
    breaker_window: int = 128
    breaker_window_s: float = 120.0
    breaker_min_samples: int = 20
    breaker_threshold: float = 0.5
    breaker_dwell_s: float = 60.0
    breaker_halfopen_samples: int = 16
    switch_abort_weight: int = 4
    brownout_queue_depth: int = 32

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.admission_slack <= 0.0:
            raise ValueError("admission_slack must be > 0")
        if not 0.0 < self.queue_wait_budget <= 1.0:
            raise ValueError("queue_wait_budget must be in (0, 1]")
        if self.breaker_window < 1:
            raise ValueError("breaker_window must be >= 1")
        if self.breaker_window_s <= 0.0:
            raise ValueError("breaker_window_s must be > 0")
        if not 1 <= self.breaker_min_samples <= self.breaker_window:
            raise ValueError("breaker_min_samples must be in [1, breaker_window]")
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError("breaker_threshold must be in (0, 1]")
        if self.breaker_dwell_s <= 0.0:
            raise ValueError("breaker_dwell_s must be > 0")
        if self.breaker_halfopen_samples < 1:
            raise ValueError("breaker_halfopen_samples must be >= 1")
        if self.switch_abort_weight < 0:
            raise ValueError("switch_abort_weight must be >= 0")
        if self.brownout_queue_depth < 0:
            raise ValueError("brownout_queue_depth must be >= 0")

    @classmethod
    def disabled(cls) -> "OverloadPolicy":
        """The zero policy: wired in but decisionless.

        A run under this policy must be ``float.hex``-identical to a run
        with no overload layer at all (gated in ``scripts/check.sh``).
        """
        return cls(enabled=False, admission_control=False, shed_expired=False, breaker_enabled=False)

    def wait_budget(self, qos_target: float) -> float:
        """Absolute queue-wait budget in seconds for a given QoS target."""
        if qos_target <= 0.0:
            raise ValueError("qos_target must be > 0")
        return self.queue_wait_budget * qos_target

    def with_scale(self, **changes: object) -> "OverloadPolicy":
        """Return a copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]
