"""Deterministic per-microservice circuit breaker.

State machine::

    CLOSED --(bad fraction >= threshold over the window)--> OPEN
    OPEN   --(dwell elapsed, lazily at the next observation)--> HALF_OPEN
    HALF_OPEN --(probe batch healthy)--> CLOSED
    HALF_OPEN --(probe batch bad)-----> OPEN

The breaker never schedules kernel events and never draws randomness:
transitions happen lazily when the breaker is next consulted, and the
OPEN→HALF_OPEN edge is stamped at exactly ``opened_at + dwell`` so the
recorded transition time is independent of *when* the consultation
happens.  That keeps the whole overload layer a pure function of sim
time + observed outcomes, preserving the repo's bit-identity gates.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import Deque, List, Tuple

from repro.overload.policy import OverloadPolicy


class BreakerState(enum.Enum):
    """Breaker phases; values are the strings used in telemetry."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Sliding-window breaker over query outcomes and switch aborts.

    Outcomes are booleans (``bad=True`` for drops, QoS violations and
    weighted switch aborts).  In CLOSED the breaker keeps a bounded
    count-based window, additionally age-evicted to
    ``policy.breaker_window_s``, and trips when the bad fraction reaches
    ``policy.breaker_threshold`` with at least ``breaker_min_samples``
    samples.  In OPEN it ignores outcomes until the dwell elapses.  In
    HALF_OPEN it judges a fixed-size probe batch and either closes or
    re-opens.
    """

    def __init__(self, policy: OverloadPolicy) -> None:
        self.policy = policy
        self.state = BreakerState.CLOSED
        #: Sim time of the most recent CLOSED/HALF_OPEN -> OPEN edge.
        self.opened_at = -math.inf
        #: Every state edge as ``(time, new_state_value)``, for telemetry.
        self.transitions: List[Tuple[float, str]] = []
        self.trips = 0
        self.reopens = 0
        self.half_opens = 0
        self.closes = 0
        self._window: Deque[Tuple[float, bool]] = deque(maxlen=policy.breaker_window)
        self._probe_total = 0
        self._probe_bad = 0

    # -- observation --------------------------------------------------

    def record(self, now: float, bad: bool, weight: int = 1) -> None:
        """Feed one outcome (optionally weighted) into the breaker."""
        if weight < 1:
            return
        self.advance(now)
        if self.state is BreakerState.OPEN:
            # Outcomes during a brownout are consequences of the trip,
            # not fresh evidence; only the dwell re-opens the question.
            return
        if self.state is BreakerState.HALF_OPEN:
            self._probe_total += weight
            if bad:
                self._probe_bad += weight
            if self._probe_total >= self.policy.breaker_halfopen_samples:
                if self._probe_bad / self._probe_total >= self.policy.breaker_threshold:
                    self.reopens += 1
                    self._open(now)
                else:
                    self.closes += 1
                    self._transition(now, BreakerState.CLOSED)
            return
        for _ in range(weight):
            self._window.append((now, bad))
        self._evict(now)
        n = len(self._window)
        if n >= self.policy.breaker_min_samples:
            bad_n = sum(1 for _, b in self._window if b)
            if bad_n / n >= self.policy.breaker_threshold:
                self.trips += 1
                self._open(now)

    # -- queries ------------------------------------------------------

    def is_open(self, now: float) -> bool:
        """True while the breaker is OPEN (advances the dwell lazily)."""
        self.advance(now)
        return self.state is BreakerState.OPEN

    def advance(self, now: float) -> None:
        """Apply the time-driven OPEN -> HALF_OPEN edge if it is due.

        The edge is stamped at ``opened_at + dwell`` — the time it
        logically happened — not at ``now``, so the transition log is
        identical no matter when the breaker is next consulted.
        """
        if self.state is BreakerState.OPEN:
            due = self.opened_at + self.policy.breaker_dwell_s
            if now >= due:
                self.half_opens += 1
                self._probe_total = 0
                self._probe_bad = 0
                self._transition(due, BreakerState.HALF_OPEN)

    @property
    def total_opens(self) -> int:
        """Initial trips plus half-open failures."""
        return self.trips + self.reopens

    # -- internals ----------------------------------------------------

    def _open(self, now: float) -> None:
        self.opened_at = now
        self._window.clear()
        self._transition(now, BreakerState.OPEN)

    def _transition(self, now: float, state: BreakerState) -> None:
        self.state = state
        self.transitions.append((now, state.value))

    def _evict(self, now: float) -> None:
        horizon = now - self.policy.breaker_window_s
        window = self._window
        while window and window[0][0] < horizon:
            window.popleft()
