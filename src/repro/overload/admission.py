"""Deadline-aware admission predictions from the M/M/N model.

These are the pure functions behind "reject on arrival when the model
predicts the enqueued query cannot meet QoS".  They are the admission
counterpart of :mod:`repro.sim.queueing`: where Eq. 4/5 reason about
the *steady-state* wait distribution, admission must reason about the
wait of one concrete arrival that sees ``queued`` queries ahead of it.

Conditioned on the system being saturated, an arrival that finds ``k``
queries queued waits for ``k + 1`` departures, and departures leave a
saturated M/M/N system at rate ``n * mu`` — an Erlang(k+1, n*mu) wait
with mean ``(k + 1) / (n * mu)``.  We use that mean as the prediction:
deterministic, monotone in the backlog, and exact in expectation under
the same assumptions as Eq. 4.
"""

from __future__ import annotations


def conditional_wait(queued: int, busy: int, servers: int, mu: float) -> float:
    """Expected queueing delay for one arrival, given the observed state.

    Args:
        queued: Queries queued ahead of the arrival (excludes in-service).
        busy: Servers currently serving.
        servers: Total server count ``n`` (containers the pool may run,
            or IaaS worker slots).
        mu: Per-server service rate (1 / mean service time).

    Returns:
        0 when a server is free and nothing is queued; otherwise the
        Erlang mean ``(queued + 1) / (n * mu)``.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if mu <= 0.0:
        raise ValueError("mu must be > 0")
    if queued < 0 or busy < 0:
        raise ValueError("queued and busy must be >= 0")
    if queued == 0 and busy < servers:
        return 0.0
    return (queued + 1) / (servers * mu)


def predicted_sojourn(queued: int, busy: int, servers: int, mu: float) -> float:
    """Predicted end-to-end latency: conditional wait plus one service."""
    return conditional_wait(queued, busy, servers, mu) + 1.0 / mu


def meets_deadline(
    queued: int,
    busy: int,
    servers: int,
    mu: float,
    qos_target: float,
    slack: float = 1.0,
) -> bool:
    """Would an arrival admitted now be predicted to meet its deadline?

    ``slack`` scales the predicted wait (not the service time): values
    above 1 reject earlier to absorb model optimism, values below 1
    tolerate it.
    """
    if qos_target <= 0.0:
        raise ValueError("qos_target must be > 0")
    if slack <= 0.0:
        raise ValueError("slack must be > 0")
    wait = conditional_wait(queued, busy, servers, mu)
    return slack * wait + 1.0 / mu <= qos_target
